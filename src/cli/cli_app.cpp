#include "cli/cli_app.hpp"

#include <atomic>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string_view>

#include "core/anacin.hpp"
#include "core/journal.hpp"
#include "course/module.hpp"
#include "course/quiz.hpp"
#include "course/use_cases.hpp"
#include "net/agent.hpp"
#include "net/server.hpp"
#include "obs/obs.hpp"
#include "proc/executor.hpp"
#include "proc/worker_main.hpp"
#include "proc/worker_pool.hpp"
#include "replay/bisect.hpp"
#include "store/hash.hpp"
#include "store/store.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"

namespace anacin::cli {

namespace {

// ---------------------------------------------------------------------------
// Exit codes (documented in docs/RESILIENCE.md)
// ---------------------------------------------------------------------------

constexpr int kExitOk = 0;
/// Any error that aborted the command (fail-fast campaign failure,
/// ConfigError, I/O failure).
constexpr int kExitError = 1;
/// The command completed but quarantined at least one work unit
/// (--keep-going): results are partial and the report says which units.
constexpr int kExitPartial = 2;
/// Unknown command (usage error) — distinct from kExitPartial so scripts
/// can tell "partial results" from "you typoed the command".
constexpr int kExitUsage = 64;
/// SIGINT: in-flight work drained, completed work journaled, then exited.
constexpr int kExitInterrupted = 130;
/// SIGTERM: identical graceful drain, shell-convention exit code 128+15.
constexpr int kExitTerminated = 143;

// ---------------------------------------------------------------------------
// SIGINT / SIGTERM → cooperative cancellation
// ---------------------------------------------------------------------------

CancelToken& interrupt_token() {
  static CancelToken token;
  return token;
}

/// Which signal asked us to stop (0 = none); decides 130 vs 143.
std::atomic<int>& interrupt_signal() {
  static std::atomic<int> signo{0};
  return signo;
}

void handle_interrupt(int signo) {
  // Async-signal-safe: two lock-free atomic stores. Workers poll the
  // token between work units; a second signal falls through to the
  // default disposition because the handler is one-shot per scope.
  interrupt_signal().store(signo, std::memory_order_relaxed);
  interrupt_token().cancel();
}

int interrupted_exit_code() {
  return interrupt_signal().load(std::memory_order_relaxed) == SIGTERM
             ? kExitTerminated
             : kExitInterrupted;
}

/// Installs the SIGINT and SIGTERM handlers for the duration of a
/// long-running command; restores the previous dispositions (and clears
/// the token) on scope exit so in-process callers (tests) can run
/// commands repeatedly. The signal-number atomic is reset on entry, NOT
/// on exit: InterruptedError unwinds through this destructor before
/// run_cli's catch block maps it to 130/143.
class InterruptScope {
public:
  InterruptScope() {
    interrupt_signal().store(0, std::memory_order_relaxed);
    previous_int_ = std::signal(SIGINT, handle_interrupt);
    previous_term_ = std::signal(SIGTERM, handle_interrupt);
  }
  ~InterruptScope() {
    std::signal(SIGINT, previous_int_);
    std::signal(SIGTERM, previous_term_);
    interrupt_token().reset();
  }
  InterruptScope(const InterruptScope&) = delete;
  InterruptScope& operator=(const InterruptScope&) = delete;

private:
  void (*previous_int_)(int) = nullptr;
  void (*previous_term_)(int) = nullptr;
};

// ---------------------------------------------------------------------------
// Strict numeric parsing (full consumption, no silent partial parses)
// ---------------------------------------------------------------------------

std::uint64_t parse_uint64_strict(std::string_view text,
                                  std::string_view flag) {
  std::uint64_t value = 0;
  const char* const end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (text.empty() || ec != std::errc{} || ptr != end) {
    throw ConfigError(std::string(flag) +
                      " expects a non-negative integer, got '" +
                      std::string(text) + "'");
  }
  return value;
}

double parse_double_strict(std::string_view text, std::string_view flag) {
  std::string token{trim(text)};
  if (token.empty()) {
    throw ConfigError(std::string(flag) + " expects a number, got ''");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || errno == ERANGE ||
      !std::isfinite(value)) {
    throw ConfigError(std::string(flag) + " expects a number, got '" +
                      token + "'");
  }
  return value;
}

std::vector<int> parse_id_list(const std::string& text,
                               std::string_view flag) {
  std::vector<int> ids;
  if (trim(text).empty()) return ids;
  for (const std::string& piece : split(text, ',')) {
    const std::string token{trim(piece)};
    int value = 0;
    const char* const end = token.data() + token.size();
    const auto [ptr, ec] = std::from_chars(token.data(), end, value);
    if (token.empty() || ec != std::errc{} || ptr != end || value < 0) {
      throw ConfigError(std::string(flag) +
                        " expects a comma-separated list of non-negative "
                        "ids, got '" +
                        text + "'");
    }
    ids.push_back(value);
  }
  return ids;
}

// ---------------------------------------------------------------------------
// Shared option bundles
// ---------------------------------------------------------------------------

struct WorkloadOptions {
  std::string pattern = "message_race";
  int ranks = 8;
  int iterations = 1;
  int nodes = 1;
  int message_bytes = 1;
  double nd_percent = 100.0;
  std::uint64_t seed = 1;

  void add_to(ArgParser& parser) {
    parser.add_string("pattern", "mini-application name", &pattern);
    parser.add_int("ranks", "number of MPI processes", &ranks);
    parser.add_int("iterations", "communication pattern iterations",
                   &iterations);
    parser.add_int("nodes", "number of compute nodes", &nodes);
    parser.add_int("msg-bytes", "message payload size in bytes",
                   &message_bytes);
    parser.add_double("nd", "percentage of non-determinism [0..100]",
                      &nd_percent);
    parser.add_uint64("seed", "execution seed", &seed);
  }

  patterns::PatternConfig shape() const {
    patterns::PatternConfig config;
    config.num_ranks = ranks;
    config.iterations = iterations;
    config.message_bytes = static_cast<std::uint32_t>(message_bytes);
    return config;
  }

  sim::SimConfig sim_config() const {
    sim::SimConfig config;
    config.num_ranks = ranks;
    config.num_nodes = nodes;
    config.seed = seed;
    config.network.nd_fraction = nd_percent / 100.0;
    return config;
  }

  core::CampaignConfig campaign(int runs, const std::string& kernel,
                                const std::string& policy) const {
    core::CampaignConfig config;
    config.pattern = pattern;
    config.shape = shape();
    config.num_nodes = nodes;
    config.nd_fraction = nd_percent / 100.0;
    config.num_runs = runs;
    config.base_seed = seed;
    config.kernel = kernel;
    config.label_policy = kernels::label_policy_from_name(policy);
    return config;
  }
};

/// Fault-injection flags shared by run / measure / sweep. The drop
/// probability is kept as text because `sweep` also accepts a lo:hi:step
/// range on the same flag.
struct FaultOptions {
  std::string drop_spec;
  double dup = 0.0;
  int retries = 3;
  double timeout_us = 50.0;
  std::string stragglers;
  double straggler_factor = 4.0;
  std::string slow_nodes;
  double slow_factor = 2.0;

  void add_to(ArgParser& parser, bool sweepable_drop = false) {
    parser.add_string("fault-drop",
                      sweepable_drop
                          ? "message drop probability [0..1], or lo:hi:step "
                            "to sweep the drop axis instead of ND%"
                          : "message drop probability [0..1]",
                      &drop_spec);
    parser.add_double("fault-dup", "message duplication probability [0..1]",
                      &dup);
    parser.add_int("fault-retries",
                   "max retransmissions of a dropped message", &retries);
    parser.add_double("fault-timeout", "retransmit timeout in microseconds",
                      &timeout_us);
    parser.add_string("stragglers", "comma-separated straggler rank ids",
                      &stragglers);
    parser.add_double("straggler-factor",
                      "compute slowdown of straggler ranks", &straggler_factor);
    parser.add_string("slow-nodes", "comma-separated slow node ids",
                      &slow_nodes);
    parser.add_double("slow-factor",
                      "compute+latency slowdown of slow nodes", &slow_factor);
  }

  double scalar_drop() const {
    if (drop_spec.empty()) return 0.0;
    if (drop_spec.find(':') != std::string::npos) {
      throw ConfigError(
          "--fault-drop expects a single probability here; lo:hi:step "
          "ranges only work with `anacin sweep`");
    }
    return parse_double_strict(drop_spec, "--fault-drop");
  }

  sim::FaultConfig config(double drop_probability) const {
    sim::FaultConfig config;
    config.drop_probability = drop_probability;
    config.duplicate_probability = dup;
    config.max_retries = retries;
    config.retry_timeout_us = timeout_us;
    config.straggler_ranks = parse_id_list(stragglers, "--stragglers");
    config.straggler_multiplier = straggler_factor;
    config.slow_nodes = parse_id_list(slow_nodes, "--slow-nodes");
    config.node_slowdown_multiplier = slow_factor;
    return config;
  }

  sim::FaultConfig config() const { return config(scalar_drop()); }
};

/// Resilience flags shared by measure / sweep / rootcause / report (the
/// campaign-running commands). See docs/RESILIENCE.md.
struct ResilienceCliOptions {
  bool keep_going = false;
  int max_retries = 0;
  std::uint64_t backoff_us = 1000;
  double run_deadline_ms = 0.0;
  std::string isolate = "none";
  std::uint64_t unit_mem_limit = 0;

  void add_to(ArgParser& parser) {
    parser.add_flag("keep-going",
                    "quarantine failed work units and finish with the "
                    "survivors instead of aborting (exit 2 when partial)",
                    &keep_going);
    parser.add_int("max-retries",
                   "retries per work unit after a transient failure",
                   &max_retries);
    parser.add_uint64("backoff-us",
                      "first retry backoff in microseconds (doubles per "
                      "retry, deterministic jitter)",
                      &backoff_us);
    parser.add_double("run-deadline-ms",
                      "per-attempt wall-clock deadline (0 = none); under "
                      "--isolate=process a watchdog SIGKILLs the worker "
                      "child preemptively",
                      &run_deadline_ms);
    parser.add_string("isolate",
                      "work-unit sandbox: none | process (fork/exec'd "
                      "worker children; requires --store)",
                      &isolate);
    parser.add_uint64("unit-mem-limit",
                      "RLIMIT_AS per worker child in bytes under "
                      "--isolate=process (0 = unlimited)",
                      &unit_mem_limit);
  }

  /// The executable to fork/exec as a worker child: this binary, unless
  /// ANACIN_WORKER_EXE overrides it (tests run inside a gtest binary
  /// whose /proc/self/exe has no `__worker` command).
  static std::string worker_executable() {
    if (const char* env = std::getenv("ANACIN_WORKER_EXE");
        env != nullptr && *env != '\0') {
      return env;
    }
    std::error_code ec;
    const std::filesystem::path exe =
        std::filesystem::read_symlink("/proc/self/exe", ec);
    if (ec) {
      throw ConfigError(
          "cannot resolve /proc/self/exe for --isolate=process; set "
          "ANACIN_WORKER_EXE to the anacin binary");
    }
    return exe.string();
  }

  /// Build the worker pool for --isolate=process (nullptr for none).
  std::unique_ptr<proc::WorkerPool> make_worker_pool() const {
    const proc::IsolationMode mode = proc::isolation_mode_from_name(isolate);
    if (mode == proc::IsolationMode::kNone) {
      ANACIN_CHECK(unit_mem_limit == 0,
                   "--unit-mem-limit requires --isolate=process");
      return nullptr;
    }
    store::ArtifactStore* store = store::active_store();
    if (store == nullptr) {
      throw ConfigError(
          "--isolate=process requires an artifact store (--store DIR or "
          "ANACIN_STORE_DIR): isolated results flow back through it");
    }
    proc::WorkerPoolConfig config;
    config.worker_exe = worker_executable();
    config.store_dir = store->objects().root().string();
    config.run_deadline_ms = run_deadline_ms;
    config.mem_limit_bytes = unit_mem_limit;
    return std::make_unique<proc::WorkerPool>(config);
  }

  /// Bundle for run_campaign; wires in the SIGINT/SIGTERM token so a
  /// signal drains in-flight units instead of killing the process
  /// mid-write. `executor` may be null (in-process execution), a worker
  /// pool (--isolate=process), or an agent fleet (`anacin serve`).
  core::ResilienceOptions options(proc::UnitExecutor* executor = nullptr)
      const {
    ANACIN_CHECK(max_retries >= 0, "--max-retries must be >= 0");
    ANACIN_CHECK(run_deadline_ms >= 0.0, "--run-deadline-ms must be >= 0");
    core::ResilienceOptions resilience;
    resilience.retry.max_retries = max_retries;
    resilience.retry.base_backoff_us = backoff_us;
    resilience.retry.run_deadline_ms = run_deadline_ms;
    resilience.keep_going = keep_going;
    resilience.cancel = &interrupt_token();
    resilience.executor = executor;
    return resilience;
  }
};

/// Prints the quarantine ledger of a partial campaign; returns the exit
/// code (kExitPartial when units were quarantined, kExitOk otherwise).
int report_quarantine(std::ostream& out, const core::CampaignResult& result) {
  if (result.complete()) return kExitOk;
  out << "PARTIAL RESULTS: " << result.quarantined.size()
      << " work unit(s) quarantined (--keep-going)\n";
  for (const core::QuarantinedUnit& unit : result.quarantined) {
    out << "  quarantined " << unit.unit << " after " << unit.attempts
        << " attempt(s): " << unit.error << '\n';
    if (unit.has_triage) {
      out << "    triage: " << unit.triage.disposition;
      if (!unit.triage.signal.empty()) {
        out << " signal=" << unit.triage.signal;
      }
      if (unit.triage.exit_status >= 0) {
        out << " exit=" << unit.triage.exit_status;
      }
      out << " peak_rss_kib=" << unit.triage.peak_rss_kib << '\n';
    }
  }
  return kExitPartial;
}

/// Rebuilds a Summary from the "summary" object of a journaled
/// CampaignResult::to_json() payload (resumed sweep points print and
/// export without recomputing anything).
analysis::Summary summary_from_json(const json::Value& doc) {
  analysis::Summary summary;
  summary.count = static_cast<std::size_t>(doc.at("count").as_number());
  summary.mean = doc.at("mean").as_number();
  summary.stddev = doc.at("stddev").as_number();
  summary.min = doc.at("min").as_number();
  summary.q1 = doc.at("q1").as_number();
  summary.median = doc.at("median").as_number();
  summary.q3 = doc.at("q3").as_number();
  summary.max = doc.at("max").as_number();
  return summary;
}

/// A lo:hi:step range on --fault-drop (sweep only); nullopt for scalars.
struct DropRange {
  double lo = 0.0;
  double hi = 0.0;
  double step = 0.0;
};

std::optional<DropRange> parse_drop_range(const std::string& spec) {
  if (spec.find(':') == std::string::npos) return std::nullopt;
  const auto parts = split(spec, ':');
  if (parts.size() != 3) {
    throw ConfigError("--fault-drop range must be lo:hi:step, got '" + spec +
                      "'");
  }
  DropRange range;
  range.lo = parse_double_strict(parts[0], "--fault-drop");
  range.hi = parse_double_strict(parts[1], "--fault-drop");
  range.step = parse_double_strict(parts[2], "--fault-drop");
  ANACIN_CHECK(range.lo >= 0.0 && range.hi <= 1.0 && range.lo <= range.hi,
               "--fault-drop range must satisfy 0 <= lo <= hi <= 1");
  ANACIN_CHECK(range.step > 0.0, "--fault-drop range step must be positive");
  return range;
}

void print_summary(std::ostream& out, const std::string& label,
                   const analysis::Summary& summary) {
  out << pad_right(label, 22) << " n=" << summary.count
      << " median=" << format_fixed(summary.median, 3)
      << " mean=" << format_fixed(summary.mean, 3)
      << " q1=" << format_fixed(summary.q1, 3)
      << " q3=" << format_fixed(summary.q3, 3)
      << " max=" << format_fixed(summary.max, 3) << '\n';
}

// ---------------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------------

int cmd_patterns(const std::vector<const char*>& argv, std::ostream& out) {
  ArgParser parser("anacin patterns — list packaged mini-applications");
  if (!parser.parse(static_cast<int>(argv.size()), argv.data())) return 0;
  for (const std::string& name : patterns::pattern_names()) {
    const auto pattern = patterns::make_pattern(name);
    out << pad_right(name, 20) << pattern->description() << '\n';
  }
  return 0;
}

int cmd_run(const std::vector<const char*>& argv, std::ostream& out) {
  WorkloadOptions workload;
  FaultOptions faults;
  std::string trace_out;
  std::string svg_out;
  bool ascii = false;
  bool metrics = false;
  ArgParser parser("anacin run — simulate one execution of a mini-app");
  workload.add_to(parser);
  faults.add_to(parser);
  parser.add_string("trace-out", "write the trace as JSON", &trace_out);
  parser.add_string("svg", "render the event graph to an SVG file", &svg_out);
  parser.add_flag("ascii", "print an ASCII event graph", &ascii);
  parser.add_flag("metrics", "print structural metrics", &metrics);
  if (!parser.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  sim::SimConfig sim_config = workload.sim_config();
  sim_config.faults = faults.config();
  const sim::RunResult result =
      core::run_pattern_once(workload.pattern, workload.shape(), sim_config);
  out << "pattern=" << workload.pattern << " ranks=" << workload.ranks
      << " nd=" << workload.nd_percent << "% seed=" << workload.seed << '\n';
  out << "events=" << result.trace.total_events()
      << " messages=" << result.stats.messages
      << " wildcard_recvs=" << result.stats.wildcard_recvs
      << " makespan_us=" << format_fixed(result.stats.makespan_us, 2) << '\n';
  if (sim_config.faults.enabled()) {
    out << "faults: drops=" << result.stats.drops
        << " retries=" << result.stats.retries
        << " duplicates=" << result.stats.duplicates
        << " straggler_events=" << result.stats.straggler_events << '\n';
  }

  const graph::EventGraph event_graph =
      graph::EventGraph::from_trace(result.trace);
  if (ascii) out << viz::ascii_event_graph(event_graph);
  if (metrics) {
    const graph::CommMatrix matrix =
        graph::communication_matrix(event_graph);
    out << "\ncommunication matrix (messages):\n"
        << viz::ascii_comm_matrix(matrix);
    const graph::CriticalPath path = graph::critical_path(event_graph);
    out << "critical path: " << path.nodes.size() << " events, "
        << format_fixed(path.virtual_duration, 2) << " us, recv share "
        << format_fixed(path.recv_share * 100.0, 1) << "%\n";
  }
  if (!trace_out.empty()) {
    core::write_json_file(trace_out, result.trace.to_json());
    out << "trace written to " << trace_out << '\n';
  }
  if (!svg_out.empty()) {
    viz::render_event_graph(event_graph).save(svg_out);
    out << "event graph written to " << svg_out << '\n';
  }
  return 0;
}

int cmd_graph(const std::vector<const char*>& argv, std::ostream& out) {
  std::string trace_in;
  std::string svg_out;
  bool no_ascii = false;
  bool metrics = false;
  ArgParser parser("anacin graph — inspect a saved trace");
  parser.add_string("trace", "trace JSON file (from `anacin run`)",
                    &trace_in);
  parser.add_string("svg", "render the event graph to an SVG file", &svg_out);
  parser.add_flag("metrics", "print structural metrics", &metrics);
  parser.add_flag("no-ascii", "suppress the ASCII rendering", &no_ascii);
  if (!parser.parse(static_cast<int>(argv.size()), argv.data())) return 0;
  if (trace_in.empty()) throw ConfigError("--trace is required");

  const trace::Trace trace =
      trace::Trace::from_json(json::parse(core::read_text_file(trace_in)));
  const graph::EventGraph event_graph = graph::EventGraph::from_trace(trace);
  out << "ranks=" << event_graph.num_ranks()
      << " nodes=" << event_graph.num_nodes()
      << " messages=" << event_graph.message_edges().size()
      << " max_lamport=" << event_graph.max_lamport() << '\n';
  if (!no_ascii) out << viz::ascii_event_graph(event_graph);
  if (metrics) {
    out << "\ncommunication matrix (messages):\n"
        << viz::ascii_comm_matrix(graph::communication_matrix(event_graph));
  }
  if (!svg_out.empty()) {
    viz::render_event_graph(event_graph).save(svg_out);
    out << "event graph written to " << svg_out << '\n';
  }
  return 0;
}

int cmd_measure(const std::vector<const char*>& argv, std::ostream& out) {
  WorkloadOptions workload;
  FaultOptions faults;
  ResilienceCliOptions resilience;
  int runs = 20;
  std::string kernel = "wl:2";
  std::string policy = "type_peer";
  std::string reduction = "to_reference";
  std::string csv_out;
  std::string violin_out;
  std::string json_out;
  ArgParser parser("anacin measure — quantify a mini-app's non-determinism");
  workload.add_to(parser);
  faults.add_to(parser);
  resilience.add_to(parser);
  parser.add_int("runs", "number of independent executions", &runs);
  parser.add_string("kernel", "graph kernel (wl[:h], vertex_histogram, ...)",
                    &kernel);
  parser.add_string("policy", "node label policy", &policy);
  parser.add_string("reduction", "to_reference | pairwise", &reduction);
  parser.add_string("csv", "write the distance sample as CSV", &csv_out);
  parser.add_string("violin", "write a violin plot SVG", &violin_out);
  parser.add_string("json", "write the full measurement result as JSON",
                    &json_out);
  if (!parser.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  core::CampaignConfig config = workload.campaign(runs, kernel, policy);
  config.faults = faults.config();
  if (reduction == "pairwise") {
    config.reduction = analysis::DistanceReduction::kPairwise;
  } else if (reduction != "to_reference") {
    throw ConfigError("unknown reduction '" + reduction + "'");
  }
  InterruptScope interrupt;
  ThreadPool pool;
  const std::unique_ptr<proc::WorkerPool> workers =
      resilience.make_worker_pool();
  const core::CampaignResult result =
      core::run_campaign(config, pool, store::active_store(),
                         resilience.options(workers.get()));
  print_summary(out, workload.pattern, result.distance_summary);
  out << "messages/run=" << result.total_messages / result.graphs.size()
      << " wildcard recvs/run="
      << result.total_wildcard_recvs / result.graphs.size() << '\n';
  if (config.faults.enabled()) {
    out << "faults: drops=" << result.total_drops
        << " duplicates=" << result.total_duplicates
        << " straggler_events=" << result.total_straggler_events << '\n';
  }

  if (!result.measurement.distances.empty()) {
    const analysis::BootstrapCi ci = analysis::bootstrap_ci(
        result.measurement.distances,
        [](std::span<const double> v) { return analysis::median(v); });
    out << "median 95% CI: [" << format_fixed(ci.lower, 3) << ", "
        << format_fixed(ci.upper, 3) << "]\n";
  }

  if (!csv_out.empty()) {
    core::CsvWriter csv({"run", "kernel_distance"});
    for (std::size_t i = 0; i < result.measurement.distances.size(); ++i) {
      csv.add_row({std::to_string(i),
                   format_fixed(result.measurement.distances[i], 6)});
    }
    csv.save(csv_out);
    out << "distances written to " << csv_out << '\n';
  }
  if (!json_out.empty()) {
    core::write_json_file(json_out, result.to_json());
    out << "measurement written to " << json_out << '\n';
  }
  if (!violin_out.empty() && !result.measurement.distances.empty()) {
    viz::violin_plot({{workload.pattern,
                       analysis::gaussian_kde(result.measurement.distances)}},
                     {.width = 420,
                      .height = 360,
                      .title = "kernel distance: " + workload.pattern,
                      .x_label = "",
                      .y_label = "kernel distance"})
        .save(violin_out);
    out << "violin written to " << violin_out << '\n';
  }
  return report_quarantine(out, result);
}

/// The sweep work description shared by `sweep` (local / --isolate) and
/// `serve` (distributed): both enumerate the same points and run the same
/// journaled loop — only the UnitExecutor differs, which is exactly why
/// distributed reports are byte-identical to local ones.
struct SweepCliOptions {
  WorkloadOptions workload;
  FaultOptions faults;
  ResilienceCliOptions resilience;
  int runs = 10;
  int step = 10;
  std::string kernel = "wl:2";
  std::string csv_out;
  std::string json_out;
  std::string journal_path;
  bool resume = false;

  SweepCliOptions() {
    workload.pattern = "amg2013";
    workload.ranks = 16;
  }

  void add_to(ArgParser& parser) {
    workload.add_to(parser);
    faults.add_to(parser, /*sweepable_drop=*/true);
    resilience.add_to(parser);
    parser.add_int("runs", "executions per setting", &runs);
    parser.add_int("step", "ND percentage increment", &step);
    parser.add_string("kernel", "graph kernel", &kernel);
    parser.add_string("csv", "write the sweep as CSV", &csv_out);
    parser.add_string("json", "write every point's full result as JSON",
                      &json_out);
    parser.add_string("journal",
                      "crash-consistent journal of completed sweep points "
                      "(written after every point; enables --resume)",
                      &journal_path);
    parser.add_flag("resume",
                    "replay points already in the journal, compute only the "
                    "rest (a killed sweep continues where it stopped)",
                    &resume);
  }
};

/// The journaled sweep loop, shared by cmd_sweep and cmd_serve. The caller
/// owns the InterruptScope and the executor's lifetime.
int run_sweep(std::ostream& out, SweepCliOptions& options,
              proc::UnitExecutor* executor) {
  WorkloadOptions& workload = options.workload;
  FaultOptions& faults = options.faults;
  ResilienceCliOptions& resilience = options.resilience;
  const int runs = options.runs;
  const int step = options.step;
  const std::string& kernel = options.kernel;
  const std::string& csv_out = options.csv_out;
  const std::string& json_out = options.json_out;
  std::string& journal_path = options.journal_path;
  const bool resume = options.resume;
  ANACIN_CHECK(step >= 1 && step <= 100, "step must be in [1,100]");

  ThreadPool pool;
  const std::optional<DropRange> drop_range =
      parse_drop_range(faults.drop_spec);

  // Enumerate every point's full config up front: the journal key must
  // cover the exact work list, so a journal recorded for a different
  // sweep (other pattern, runs, axis, ...) can never be replayed here.
  struct Point {
    std::string label;
    double axis = 0.0;
    core::CampaignConfig config;
  };
  std::vector<Point> points;
  if (drop_range) {
    // Fault sweep: ND% stays at --nd, the drop probability is the axis.
    const int count = static_cast<int>(
        std::llround((drop_range->hi - drop_range->lo) / drop_range->step));
    for (int i = 0; i <= count; ++i) {
      const double p = std::min(
          drop_range->lo + static_cast<double>(i) * drop_range->step, 1.0);
      core::CampaignConfig config =
          workload.campaign(runs, kernel, "type_peer");
      config.faults = faults.config(p);
      points.push_back({"drop " + format_fixed(p, 2), p, std::move(config)});
    }
  } else {
    for (int percent = 0; percent <= 100; percent += step) {
      core::CampaignConfig config =
          workload.campaign(runs, kernel, "type_peer");
      config.nd_fraction = percent / 100.0;
      config.faults = faults.config();
      points.push_back({std::to_string(percent) + "% ND",
                        static_cast<double>(percent), std::move(config)});
    }
  }

  json::Value key_doc = json::Value::array();
  for (const Point& point : points) key_doc.push_back(point.config.to_json());
  const std::string campaign_key = store::digest_json(key_doc).to_hex();

  std::unique_ptr<core::CampaignJournal> journal;
  if (resume || !journal_path.empty()) {
    if (journal_path.empty()) {
      // Default next to the artifact store when one is active — resumable
      // sweeps want the store anyway (it covers the half-finished point).
      const store::ArtifactStore* store = store::active_store();
      const std::filesystem::path dir =
          store != nullptr
              ? store->objects().root() / "journal"
              : std::filesystem::path(".");
      journal_path =
          (dir / ("sweep-" + campaign_key.substr(0, 16) + ".jsonl")).string();
    }
    if (!resume) {
      // A fresh (non-resume) sweep must not inherit a stale journal.
      std::error_code ec;
      std::filesystem::remove(journal_path, ec);
    }
    journal = std::make_unique<core::CampaignJournal>(journal_path,
                                                      campaign_key);
    if (resume) {
      out << "resume: " << journal->size() << " of " << points.size()
          << " points journaled at " << journal_path << '\n';
    }
  }

  // Test hook: SIGKILL ourselves after journaling N fresh points, so the
  // kill/resume integration test crashes at a deterministic place.
  std::int64_t crash_after = -1;
  if (const char* env = std::getenv("ANACIN_CRASH_AFTER_POINTS");
      env != nullptr && *env != '\0') {
    crash_after = static_cast<std::int64_t>(
        parse_uint64_strict(env, "ANACIN_CRASH_AFTER_POINTS"));
  }

  std::vector<double> axis;
  std::vector<double> medians;
  std::optional<core::CsvWriter> csv;
  if (!csv_out.empty()) {
    csv.emplace(std::vector<std::string>{
        drop_range ? "drop_probability" : "nd_percent", "median", "mean"});
  }
  json::Value points_json = json::Value::array();
  std::size_t quarantined_units = 0;
  std::int64_t fresh_points = 0;
  bool interrupted = false;

  for (const Point& point : points) {
    if (interrupt_token().cancelled()) {
      interrupted = true;
      break;
    }
    const std::string point_key =
        store::digest_json(point.config.to_json()).to_hex();
    const json::Value* replay =
        journal != nullptr && resume ? journal->lookup(point_key) : nullptr;
    json::Value result_json;
    analysis::Summary summary;
    if (replay != nullptr) {
      result_json = *replay;
      summary = summary_from_json(result_json.at("summary"));
      obs::counter("resilience.points_replayed").add(1);
    } else {
      core::CampaignResult result;
      try {
        result = core::run_campaign(point.config, pool,
                                    store::active_store(),
                                    resilience.options(executor));
      } catch (const InterruptedError&) {
        interrupted = true;
        break;
      }
      result_json = result.to_json();
      summary = result.distance_summary;
      if (journal != nullptr) journal->record(point_key, result_json);
      ++fresh_points;
      if (crash_after >= 0 && fresh_points >= crash_after) {
        std::raise(SIGKILL);
      }
    }
    quarantined_units +=
        result_json.at("resilience").at("quarantined").size();
    print_summary(out, point.label, summary);
    axis.push_back(point.axis);
    medians.push_back(summary.median);
    if (csv) {
      csv->add_row({format_fixed(point.axis, drop_range ? 4 : 0),
                    format_fixed(summary.median, 4),
                    format_fixed(summary.mean, 4)});
    }
    json::Value entry = json::Value::object();
    entry.set("label", point.label);
    entry.set("axis", point.axis);
    entry.set("result", std::move(result_json));
    points_json.push_back(std::move(entry));
  }

  double spearman = 0.0;
  if (!interrupted) {
    spearman = analysis::spearman(axis, medians);
    out << (drop_range ? "Spearman(median, drop) = "
                       : "Spearman(median, nd%) = ")
        << format_fixed(spearman, 3) << '\n';
  } else {
    out << "interrupted: " << axis.size() << " of " << points.size()
        << " points completed";
    if (journal != nullptr) out << " (journaled; rerun with --resume)";
    out << '\n';
  }
  if (csv) {
    csv->save(csv_out);
    out << "sweep written to " << csv_out << '\n';
  }
  if (!json_out.empty()) {
    json::Value doc = json::Value::object();
    doc.set("complete", !interrupted && quarantined_units == 0);
    doc.set("points", std::move(points_json));
    if (!interrupted) doc.set("spearman", spearman);
    core::write_json_file(json_out, doc);
    out << "sweep json written to " << json_out << '\n';
  }
  if (interrupted) return interrupted_exit_code();
  if (quarantined_units > 0) {
    out << "PARTIAL RESULTS: " << quarantined_units
        << " work unit(s) quarantined across the sweep (--keep-going)\n";
    return kExitPartial;
  }
  return kExitOk;
}

int cmd_sweep(const std::vector<const char*>& argv, std::ostream& out) {
  SweepCliOptions options;
  ArgParser parser(
      "anacin sweep — kernel distance vs ND% (paper Fig 7), or vs message "
      "drop probability when --fault-drop is a lo:hi:step range");
  options.add_to(parser);
  if (!parser.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  InterruptScope interrupt;
  const std::unique_ptr<proc::WorkerPool> workers =
      options.resilience.make_worker_pool();
  return run_sweep(out, options, workers.get());
}

/// The --net-chaos-* flag set shared by serve and agent. Flags override
/// the ANACIN_NET_CHAOS environment spec field-by-field, so a fleet
/// script can set a baseline in the environment and a single process can
/// still be dialed up or down from its command line. Negative defaults
/// mean "not set here".
struct ChaosCliOptions {
  std::uint64_t seed = 0;
  double drop = -1.0;
  double corrupt = -1.0;
  double reorder = -1.0;
  double reset = -1.0;
  double delay = -1.0;
  double delay_ms = -1.0;
  double partition = -1.0;
  double partition_ms = -1.0;

  void add_to(ArgParser& parser) {
    parser.add_uint64("net-chaos-seed",
                      "seed of the deterministic fault stream (0 keeps the "
                      "ANACIN_NET_CHAOS / default seed)",
                      &seed);
    parser.add_double("net-chaos-drop",
                      "probability a sent frame is silently dropped", &drop);
    parser.add_double("net-chaos-corrupt",
                      "probability a sent frame gets one byte flipped "
                      "(after the CRC32C trailer, so the peer sees it)",
                      &corrupt);
    parser.add_double("net-chaos-reorder",
                      "probability a sent frame swaps with its successor",
                      &reorder);
    parser.add_double("net-chaos-reset",
                      "probability a send tears the connection down instead",
                      &reset);
    parser.add_double("net-chaos-delay",
                      "probability a sent frame is delayed", &delay);
    parser.add_double("net-chaos-delay-ms",
                      "upper bound of the injected delay", &delay_ms);
    parser.add_double("net-chaos-partition",
                      "probability a send opens a one-way blackhole window",
                      &partition);
    parser.add_double("net-chaos-partition-ms",
                      "length of the one-way blackhole window",
                      &partition_ms);
  }

  net::ChaosConfig resolve() const {
    net::ChaosConfig config =
        net::ChaosConfig::from_env().value_or(net::ChaosConfig{});
    if (seed != 0) config.seed = seed;
    const auto probability = [](const char* flag, double value) {
      ANACIN_CHECK(value <= 1.0,
                   std::string(flag) + " is a probability in [0,1]");
      return value;
    };
    if (drop >= 0) config.drop = probability("--net-chaos-drop", drop);
    if (corrupt >= 0) {
      config.corrupt = probability("--net-chaos-corrupt", corrupt);
    }
    if (reorder >= 0) {
      config.reorder = probability("--net-chaos-reorder", reorder);
    }
    if (reset >= 0) config.reset = probability("--net-chaos-reset", reset);
    if (delay >= 0) config.delay = probability("--net-chaos-delay", delay);
    if (delay_ms >= 0) config.delay_ms = delay_ms;
    if (partition >= 0) {
      config.partition = probability("--net-chaos-partition", partition);
    }
    if (partition_ms >= 0) config.partition_ms = partition_ms;
    return config;
  }
};

int cmd_serve(const std::vector<const char*>& argv, std::ostream& out) {
  SweepCliOptions options;
  // Agent loss is expected in a fleet; default to re-queueing a unit a few
  // times (on surviving agents) before giving up, unlike local sweeps
  // where a transient failure usually means a bug.
  options.resilience.max_retries = 3;
  std::string bind = "127.0.0.1";
  int port = 0;
  int agents = 1;
  std::string port_file;
  double heartbeat_timeout_ms = 10'000.0;
  double unit_lease_ms = 30'000.0;
  int max_inflight = 0;
  ChaosCliOptions chaos;
  ArgParser parser(
      "anacin serve — run a sweep as a scheduler farming work units to "
      "`anacin agent` fleets over TCP (see docs/DISTRIBUTED.md)");
  options.add_to(parser);
  parser.add_string("bind", "listener address (IPv4 literal)", &bind);
  parser.add_int("port", "listener port (0 = ephemeral; see --port-file)",
                 &port);
  parser.add_int("agents", "wait for this many agents before starting",
                 &agents);
  parser.add_string("port-file",
                    "write the bound port to FILE once listening (how "
                    "tests and scripts discover an ephemeral port)",
                    &port_file);
  parser.add_double("agent-heartbeat-timeout-ms",
                    "close an agent connection after this long without a "
                    "frame while a unit is in flight, forcing a reconnect "
                    "(0 = never)",
                    &heartbeat_timeout_ms);
  parser.add_double("unit-lease-ms",
                    "how long a disconnected agent session may take to "
                    "reconnect and resume before its unit is re-queued",
                    &unit_lease_ms);
  parser.add_int("net-max-inflight",
                 "at most this many units on the fabric at once "
                 "(0 = unbounded)",
                 &max_inflight);
  chaos.add_to(parser);
  if (!parser.parse(static_cast<int>(argv.size()), argv.data())) return 0;
  ANACIN_CHECK(agents >= 1, "--agents must be >= 1");
  ANACIN_CHECK(port >= 0 && port <= 65535, "--port must be in [0,65535]");
  ANACIN_CHECK(unit_lease_ms > 0.0, "--unit-lease-ms must be > 0");
  ANACIN_CHECK(max_inflight >= 0, "--net-max-inflight must be >= 0");
  ANACIN_CHECK(options.resilience.isolate == "none",
               "serve farms units to remote agents; --isolate does not "
               "compose with it");
  store::ArtifactStore* store = store::active_store();
  if (store == nullptr) {
    throw ConfigError(
        "serve requires an artifact store (--store DIR or "
        "ANACIN_STORE_DIR): distributed results flow back through it");
  }

  InterruptScope interrupt;
  net::AgentServerConfig server_config;
  server_config.bind_host = bind;
  server_config.port = static_cast<std::uint16_t>(port);
  server_config.heartbeat_timeout_ms = heartbeat_timeout_ms;
  server_config.unit_lease_ms = unit_lease_ms;
  server_config.max_inflight = static_cast<std::size_t>(max_inflight);
  server_config.chaos = chaos.resolve();
  net::AgentServer server(server_config, *store);
  out << "serve: listening on " << bind << ":" << server.port() << '\n';
  if (server_config.chaos.enabled()) {
    out << "serve: " << server_config.chaos.summary() << '\n';
  }
  if (!port_file.empty()) {
    support::atomic_write_file(port_file, std::to_string(server.port()));
  }
  out << "serve: waiting for " << agents << " agent(s)\n";
  while (!server.wait_for_agents(static_cast<std::size_t>(agents), 100)) {
    if (interrupt_token().cancelled()) return interrupted_exit_code();
  }
  out << "serve: " << server.agent_count() << " agent(s) connected\n";
  return run_sweep(out, options, &server);
}

int cmd_agent(const std::vector<const char*>& argv, std::ostream& out) {
  std::string connect;
  std::string name;
  double heartbeat_ms = 50.0;
  std::uint64_t max_units = 0;
  int reconnect_max = 5;
  double reconnect_backoff_ms = 100.0;
  ChaosCliOptions chaos;
  ArgParser parser(
      "anacin agent — join an `anacin serve` scheduler and execute its "
      "work units against the local artifact store");
  parser.add_string("connect", "scheduler address as HOST:PORT", &connect);
  parser.add_string("name", "agent name in scheduler diagnostics", &name);
  parser.add_double("heartbeat-ms", "heartbeat interval while executing",
                    &heartbeat_ms);
  parser.add_uint64("max-units",
                    "exit after this many units (0 = until the scheduler "
                    "hangs up; tests use 1 to exercise re-queueing)",
                    &max_units);
  parser.add_int("reconnect-max",
                 "give up after this many consecutive failed (re)connect "
                 "attempts",
                 &reconnect_max);
  parser.add_double("reconnect-backoff-ms",
                    "base of the seeded exponential reconnect backoff",
                    &reconnect_backoff_ms);
  chaos.add_to(parser);
  if (!parser.parse(static_cast<int>(argv.size()), argv.data())) return 0;
  ANACIN_CHECK(heartbeat_ms > 0.0, "--heartbeat-ms must be > 0");
  ANACIN_CHECK(reconnect_max >= 1, "--reconnect-max must be >= 1");
  ANACIN_CHECK(reconnect_backoff_ms >= 0.0,
               "--reconnect-backoff-ms must be >= 0");
  const auto colon = connect.rfind(':');
  if (connect.empty() || colon == std::string::npos || colon == 0 ||
      colon + 1 == connect.size()) {
    throw ConfigError("--connect expects HOST:PORT, got '" + connect + "'");
  }
  const std::uint64_t port =
      parse_uint64_strict(connect.substr(colon + 1), "--connect port");
  ANACIN_CHECK(port >= 1 && port <= 65535,
               "--connect port must be in [1,65535]");
  store::ArtifactStore* store = store::active_store();
  if (store == nullptr) {
    throw ConfigError(
        "agent requires a local artifact store (--store DIR or "
        "ANACIN_STORE_DIR): it executes units against it and ships "
        "objects from it");
  }

  net::AgentConfig config;
  config.host = connect.substr(0, colon);
  config.port = static_cast<std::uint16_t>(port);
  config.name = name;
  config.heartbeat_interval_ms = heartbeat_ms;
  config.max_units = max_units;
  config.reconnect_max = reconnect_max;
  config.reconnect_backoff_ms = reconnect_backoff_ms;
  config.chaos = chaos.resolve();
  out << "agent: joining " << config.host << ":" << config.port << '\n';
  if (config.chaos.enabled()) {
    out << "agent: " << config.chaos.summary() << '\n';
  }
  return net::run_agent(*store, config);
}

int cmd_rootcause(const std::vector<const char*>& argv, std::ostream& out) {
  WorkloadOptions workload;
  workload.pattern = "amg2013";
  workload.ranks = 16;
  int runs = 8;
  int slice_window = 16;
  double hot_fraction = 0.5;
  std::string bar_out;
  ArgParser parser(
      "anacin rootcause — callstacks in high-ND regions (paper Fig 8)");
  workload.add_to(parser);
  parser.add_int("runs", "executions to compare", &runs);
  parser.add_int("slice-window", "logical-time slice width", &slice_window);
  parser.add_double("hot-fraction", "fraction of the peak that counts as hot",
                    &hot_fraction);
  parser.add_string("bar", "write a bar chart SVG", &bar_out);
  if (!parser.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  ThreadPool pool;
  const core::CampaignConfig config =
      workload.campaign(runs, "wl:2", "type_peer");
  const core::CampaignResult campaign = core::run_campaign(config, pool);
  analysis::RootCauseConfig root_config;
  root_config.slice_window = static_cast<std::uint64_t>(slice_window);
  root_config.hot_fraction = hot_fraction;
  const auto kernel = kernels::make_kernel(config.kernel);
  const analysis::RootCauseReport report = analysis::find_root_causes(
      *kernel, config.label_policy, campaign.graphs, root_config, pool);

  if (report.callstacks.empty()) {
    out << "no divergence found — the application appears deterministic at "
           "these settings\n";
    return 0;
  }
  out << "hot slices: " << report.hot_slices.size() << " of "
      << report.profile.distance.size() << '\n';
  std::vector<std::string> labels;
  std::vector<double> values;
  std::vector<viz::Bar> bars;
  for (const auto& entry : report.callstacks) {
    labels.push_back(entry.path);
    values.push_back(entry.frequency);
    bars.push_back({entry.path, entry.frequency});
  }
  out << viz::ascii_bar_chart(labels, values);
  out << "likely root source: " << report.callstacks.front().path << '\n';
  if (!bar_out.empty()) {
    viz::bar_plot(bars, {.width = 720,
                         .height = 300,
                         .title = "callstacks in high-ND regions",
                         .x_label = "normalized relative frequency",
                         .y_label = ""})
        .save(bar_out);
    out << "bar chart written to " << bar_out << '\n';
  }
  return 0;
}

int cmd_replay(const std::vector<const char*>& argv, std::ostream& out) {
  WorkloadOptions workload;
  std::uint64_t replay_seed = 9999;
  std::string schedule_out;
  ArgParser parser("anacin replay — record one run, replay under new noise");
  workload.add_to(parser);
  parser.add_uint64("replay-seed", "noise seed for the replayed run",
                    &replay_seed);
  parser.add_string("schedule-out", "write the recorded schedule as JSON",
                    &schedule_out);
  if (!parser.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  const sim::RankProgram program =
      patterns::make_pattern(workload.pattern)->program(workload.shape());
  sim::SimConfig replay_config = workload.sim_config();
  replay_config.seed = replay_seed;
  const replay::RecordReplayResult rr = replay::record_and_replay(
      workload.sim_config(), replay_config, program);

  const sim::ReplaySchedule schedule =
      replay::record_schedule(rr.recorded.trace);
  out << "recorded wildcard matches: " << schedule.total_matches() << '\n';

  const auto kernel = kernels::make_kernel("wl:2");
  const double distance = kernel->distance(
      kernels::build_labeled_graph(
          graph::EventGraph::from_trace(rr.recorded.trace),
          kernels::LabelPolicy::kTypePeer),
      kernels::build_labeled_graph(
          graph::EventGraph::from_trace(rr.replayed.trace),
          kernels::LabelPolicy::kTypePeer));
  out << "kernel distance(recorded, replayed) = " << distance << '\n';
  out << (distance == 0.0 ? "replay reproduced the recorded matching exactly"
                          : "replay diverged (unexpected)")
      << '\n';
  if (!schedule_out.empty()) {
    core::write_json_file(schedule_out, replay::schedule_to_json(schedule));
    out << "schedule written to " << schedule_out << '\n';
  }
  return distance == 0.0 ? 0 : 1;
}

int cmd_bisect(const std::vector<const char*>& argv, std::ostream& out) {
  WorkloadOptions workload;
  FaultOptions faults;
  ResilienceCliOptions resilience;
  std::uint64_t replay_seed = 9999;
  double target = 0.9;
  std::string kernel = "wl:2";
  std::string policy = "type_peer";
  int slice_window = 16;
  std::string json_out;
  std::string bar_out;
  ArgParser parser(
      "anacin bisect — delta-debug the recorded wildcard matches down to a "
      "minimal racy set and rank its root causes (see docs/REPLAY.md)");
  workload.add_to(parser);
  faults.add_to(parser);
  resilience.add_to(parser);
  parser.add_uint64("replay-seed",
                    "noise seed of the candidate replays (must differ from "
                    "--seed, or there is no gap to bisect)",
                    &replay_seed);
  parser.add_double("target",
                    "fraction of the all-freed distance a candidate must "
                    "reproduce to count as racy [0..1]",
                    &target);
  parser.add_string("kernel", "graph kernel (wl[:h], vertex_histogram, ...)",
                    &kernel);
  parser.add_string("policy", "node label policy", &policy);
  parser.add_int("slice-window", "logical-time slice width of the report",
                 &slice_window);
  parser.add_string("json", "write the full bisection result as JSON",
                    &json_out);
  parser.add_string("bar", "write the ranked report as a bar chart SVG",
                    &bar_out);
  if (!parser.parse(static_cast<int>(argv.size()), argv.data())) return 0;
  ANACIN_CHECK(slice_window >= 1, "--slice-window must be >= 1");
  // Every candidate's distance is load-bearing for convergence, so there is
  // no partial-results mode to keep going into.
  ANACIN_CHECK(!resilience.keep_going,
               "bisect cannot skip failed candidates; --keep-going is not "
               "supported here");

  replay::BisectConfig config;
  config.pattern = workload.pattern;
  config.shape = workload.shape();
  config.record_sim = workload.sim_config();
  config.record_sim.faults = faults.config();
  config.replay_seed = replay_seed;
  config.kernel_spec = kernel;
  config.label_policy = kernels::label_policy_from_name(policy);
  config.target_fraction = target;
  config.slice_window = static_cast<std::uint64_t>(slice_window);
  config.retry.max_retries = resilience.max_retries;
  config.retry.base_backoff_us = resilience.backoff_us;
  config.retry.run_deadline_ms = resilience.run_deadline_ms;

  InterruptScope interrupt;
  ThreadPool pool;
  const std::unique_ptr<proc::WorkerPool> workers =
      resilience.make_worker_pool();
  const replay::BisectResult result =
      replay::bisect(config, pool, workers.get(), &interrupt_token());

  out << "recorded wildcard matches: " << result.schedule.total_matches()
      << '\n';
  out << "full gap (all matches freed): " << format_fixed(result.full_gap, 3)
      << '\n';
  if (result.minimal.empty()) {
    out << "no racy matches found — replays reproduce the recording at "
           "these settings\n";
  } else {
    out << "minimal racy set: " << result.minimal.size() << " of "
        << result.schedule.total_matches() << " matches (" << result.rounds
        << " round(s), " << result.candidates << " candidate replay(s))\n";
    out << "achieved " << format_fixed(result.achieved, 3) << " = "
        << format_fixed(100.0 * result.achieved / result.full_gap, 1)
        << "% of the gap\n";
    std::vector<std::string> labels;
    std::vector<double> values;
    std::vector<viz::Bar> bars;
    for (const replay::RacyMatch& match : result.report) {
      out << "  rank " << match.rank << " recv#" << match.recv_seq
          << " <- rank " << match.source << " (slice " << match.slice
          << ")  " << match.callsite
          << "  contribution=" << format_fixed(match.contribution, 3) << '\n';
      const std::string label = match.callsite + " [r" +
                                std::to_string(match.rank) + " s" +
                                std::to_string(match.slice) + "]";
      labels.push_back(label);
      values.push_back(match.contribution);
      bars.push_back({label, match.contribution});
    }
    out << viz::ascii_bar_chart(labels, values);
    out << "likely root cause: " << result.report.front().callsite << '\n';
    if (!bar_out.empty()) {
      viz::bar_plot(bars, {.width = 720,
                           .height = 90.0 + 34.0 * bars.size(),
                           .title = "minimal racy matches: " +
                                    workload.pattern,
                           .x_label = "standalone kernel-distance "
                                      "contribution",
                           .y_label = ""})
          .save(bar_out);
      out << "bar chart written to " << bar_out << '\n';
    }
  }
  if (!json_out.empty()) {
    core::write_json_file(json_out, replay::bisect_to_json(config, result));
    out << "bisection written to " << json_out << '\n';
  }
  return kExitOk;
}

int cmd_figures(const std::vector<const char*>& argv, std::ostream& out) {
  std::string id;
  ArgParser parser("anacin figures — index of reproduced paper items");
  parser.add_string("id", "show one item (tab1, fig1..fig8)", &id);
  if (!parser.parse(static_cast<int>(argv.size()), argv.data())) return 0;
  if (id.empty()) {
    out << core::render_experiment_index();
    return 0;
  }
  const core::ExperimentInfo* experiment = core::find_experiment(id);
  if (experiment == nullptr) {
    throw ConfigError("unknown experiment id '" + id + "' (try tab1, fig1..fig8)");
  }
  out << experiment->paper_item << ": " << experiment->title << '\n'
      << "workload: " << experiment->workload << '\n'
      << "bench:    build/bench/" << experiment->bench_target << '\n'
      << "expected: " << experiment->expected_shape << '\n';
  for (const std::string& artifact : experiment->artifacts) {
    out << "artifact: results/" << artifact << '\n';
  }
  return 0;
}

int cmd_report(const std::vector<const char*>& argv, std::ostream& out) {
  WorkloadOptions workload;
  workload.pattern = "amg2013";
  workload.ranks = 16;
  int runs = 10;
  std::string out_path = "anacin_report.html";
  ArgParser parser(
      "anacin report — one-stop HTML analysis of an application's "
      "non-determinism (the packaged-notebook workflow)");
  workload.add_to(parser);
  parser.add_int("runs", "executions to sample", &runs);
  parser.add_string("out", "output HTML path", &out_path);
  if (!parser.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  ThreadPool pool;
  const core::CampaignConfig config =
      workload.campaign(runs, "wl:2", "type_peer");
  const core::CampaignResult campaign = core::run_campaign(config, pool);
  const auto kernel = kernels::make_kernel(config.kernel);

  core::HtmlReport report("Non-determinism analysis: " + workload.pattern);
  report.add_paragraph(
      "Generated by `anacin report`. The kernel distance between event "
      "graphs of repeated executions is the proxy metric for "
      "non-determinism: identical runs have distance 0.");
  report.add_table({
      {"pattern", workload.pattern},
      {"MPI processes", std::to_string(workload.ranks)},
      {"compute nodes", std::to_string(workload.nodes)},
      {"iterations", std::to_string(workload.iterations)},
      {"% non-determinism", format_fixed(workload.nd_percent, 0)},
      {"executions", std::to_string(runs)},
      {"kernel", config.kernel},
      {"median kernel distance",
       format_fixed(campaign.distance_summary.median, 3)},
      {"max kernel distance",
       format_fixed(campaign.distance_summary.max, 3)},
      {"messages per run",
       std::to_string(campaign.total_messages / campaign.graphs.size())},
      {"wildcard receives per run",
       std::to_string(campaign.total_wildcard_recvs /
                      campaign.graphs.size())},
  });

  report.add_heading("Kernel-distance distribution");
  report.add_figure(
      viz::violin_plot({{workload.pattern,
                         analysis::gaussian_kde(
                             campaign.measurement.distances)}},
                       {.width = 420,
                        .height = 340,
                        .title = "",
                        .x_label = "",
                        .y_label = "kernel distance to reference"}),
      std::to_string(runs) + " executions vs a jitter-free reference run");

  report.add_heading("One execution, visualized");
  const graph::EventGraph& sample = campaign.graphs.front();
  if (sample.num_nodes() <= 400) {
    report.add_figure(viz::render_event_graph(sample),
                      "event graph of the first sampled run");
  } else {
    report.add_preformatted(viz::ascii_event_graph(sample, 8));
  }
  report.add_figure(
      viz::comm_matrix_heatmap(graph::communication_matrix(sample)),
      "message counts per (sender, receiver) pair");

  report.add_heading("Where the runs diverge (root-cause analysis)");
  const analysis::RootCauseReport causes = analysis::find_root_causes(
      *kernel, config.label_policy, campaign.graphs, {}, pool);
  if (causes.callstacks.empty()) {
    report.add_paragraph(
        "No divergence detected: the application behaved deterministically "
        "at these settings.");
  } else {
    std::vector<viz::Point> profile;
    for (std::size_t s = 0; s < causes.profile.distance.size(); ++s) {
      profile.push_back(
          {static_cast<double>(s), causes.profile.distance[s]});
    }
    report.add_figure(
        viz::line_plot({{"divergence", profile}},
                       {.width = 620,
                        .height = 280,
                        .title = "",
                        .x_label = "logical-time slice",
                        .y_label = "mean pairwise distance"}),
        "divergence across logical time; peaks are the high-ND regions");
    std::vector<viz::Bar> bars;
    for (const auto& entry : causes.callstacks) {
      bars.push_back({entry.path, entry.frequency});
    }
    report.add_figure(
        viz::bar_plot(bars, {.width = 700,
                             .height = 90.0 + 34.0 * bars.size(),
                             .title = "",
                             .x_label = "normalized relative frequency",
                             .y_label = ""}),
        "call paths of divergent events inside the high-ND regions — the "
        "likely root sources");
    report.add_paragraph("Likely root source: " +
                         causes.callstacks.front().path);
  }

  report.add_heading("Pipeline observability");
  report.add_paragraph(
      "Process-wide metrics captured while producing this report (see "
      "docs/OBSERVABILITY.md; run with the global --metrics-out flag for "
      "the full machine-readable snapshot).");
  const json::Value metrics = obs::Registry::global().snapshot_json();
  std::vector<std::pair<std::string, std::string>> metric_rows;
  for (const auto& [name, value] : metrics.at("counters").members()) {
    metric_rows.emplace_back(
        name, std::to_string(static_cast<std::uint64_t>(value.as_number())));
  }
  for (const auto& [name, histogram] : metrics.at("histograms").members()) {
    metric_rows.emplace_back(
        name + " (mean / p99)",
        format_fixed(histogram.at("mean").as_number(), 3) + " / " +
            format_fixed(histogram.at("p99").as_number(), 3));
  }
  report.add_table(metric_rows);

  report.save(out_path);
  out << "report written to " << out_path << '\n';
  print_summary(out, workload.pattern, campaign.distance_summary);
  return 0;
}

int cmd_quiz(const std::vector<const char*>& argv, std::ostream& out) {
  std::string level = "A";
  bool reveal = false;
  std::string grade_spec;
  ArgParser parser("anacin quiz — course comprehension questions");
  parser.add_string("level", "level (A, B, C) or goal (e.g. C.2)", &level);
  parser.add_flag("reveal", "print the answer key", &reveal);
  parser.add_string("grade", "grade answers: 'A.1-q1=b,B.1-q1=a,...'",
                    &grade_spec);
  if (!parser.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  if (!grade_spec.empty()) {
    std::vector<std::pair<std::string, std::size_t>> answers;
    for (const std::string& entry : split(grade_spec, ',')) {
      const auto parts = split(entry, '=');
      if (parts.size() != 2 || parts[1].size() != 1 ||
          parts[1][0] < 'a' || parts[1][0] > 'z') {
        throw ConfigError("malformed answer '" + entry +
                          "' (expected id=letter)");
      }
      answers.emplace_back(std::string(trim(parts[0])),
                           static_cast<std::size_t>(parts[1][0] - 'a'));
    }
    const course::QuizGrade grade = course::grade_quiz(answers);
    out << "score: " << grade.correct << '/' << grade.answered << " ("
        << static_cast<int>(grade.score() * 100) << "%)\n";
    for (const std::string& id : grade.missed_ids) {
      out << "  review " << id << '\n';
    }
    return grade.missed_ids.empty() ? 0 : 1;
  }

  const auto questions = course::questions_for(level);
  if (questions.empty()) {
    throw ConfigError("no questions for level/goal '" + level + "'");
  }
  for (const course::QuizQuestion& question : questions) {
    out << course::render_question(question, reveal) << '\n';
  }
  return 0;
}

int cmd_course(const std::vector<const char*>& argv, std::ostream& out) {
  int use_case = 0;
  bool schedule = false;
  bool homework = false;
  ArgParser parser("anacin course — course module tables and use cases");
  parser.add_int("use-case", "run use case 1, 2, or 3 (0 = tables only)",
                 &use_case);
  parser.add_flag("schedule", "print the half-day tutorial agenda",
                  &schedule);
  parser.add_flag("assignments", "print the per-goal assignments",
                  &homework);
  if (!parser.parse(static_cast<int>(argv.size()), argv.data())) return 0;

  if (schedule) {
    out << course::render_tutorial_schedule();
    return 0;
  }
  if (homework) {
    out << course::render_assignments();
    return 0;
  }
  if (use_case == 0) {
    out << course::render_learning_objectives() << '\n'
        << course::render_prerequisites();
    return 0;
  }
  ThreadPool pool;
  switch (use_case) {
    case 1: {
      const course::UseCase1Result lesson = course::run_use_case_1();
      out << viz::ascii_event_graph(lesson.race_run_a) << '\n'
          << viz::ascii_event_graph(lesson.race_run_b);
      out << "runs differ: " << (lesson.runs_differ ? "yes" : "no") << '\n';
      return lesson.runs_differ ? 0 : 1;
    }
    case 2: {
      const course::UseCase2Result lesson =
          course::run_use_case_2(pool, 16, 8, 10);
      print_summary(out, "more processes", lesson.many_procs);
      print_summary(out, "fewer processes", lesson.few_procs);
      print_summary(out, "two iterations", lesson.two_iterations);
      print_summary(out, "one iteration", lesson.one_iteration);
      return lesson.procs_effect_observed &&
                     lesson.iterations_effect_observed
                 ? 0
                 : 1;
    }
    case 3: {
      const course::UseCase3Result lesson =
          course::run_use_case_3(pool, 12, 8, 25);
      for (std::size_t i = 0; i < lesson.nd_percents.size(); ++i) {
        print_summary(out,
                      format_fixed(lesson.nd_percents[i], 0) + "% ND",
                      lesson.distance_by_percent[i]);
      }
      if (!lesson.root_causes.callstacks.empty()) {
        out << "top callstack: " << lesson.root_causes.callstacks.front().path
            << '\n';
      }
      return lesson.monotone_observed ? 0 : 1;
    }
    default:
      throw ConfigError("use case must be 1, 2, or 3");
  }
}

int cmd_cache(const std::vector<const char*>& argv, std::ostream& out) {
  // The action is the first non-flag operand; everything else goes to the
  // option parser (ArgParser has no positional-argument support).
  std::string action;
  std::vector<const char*> rest;
  rest.push_back(argv.empty() ? "anacin" : argv[0]);
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string_view arg = argv[i];
    if (action.empty() && !arg.empty() && arg[0] != '-') {
      action = std::string(arg);
    } else {
      rest.push_back(argv[i]);
    }
  }

  std::uint64_t max_bytes = std::numeric_limits<std::uint64_t>::max();
  bool repair = false;
  ArgParser parser(
      "anacin cache <stats|verify|gc> — inspect and maintain the artifact "
      "store (pass --store DIR before the command, or set ANACIN_STORE_DIR)");
  parser.add_uint64("max-bytes",
                    "gc: evict least-recently-used objects until the store "
                    "is at most this many bytes",
                    &max_bytes);
  parser.add_flag("repair",
                  "verify: move corrupt and foreign objects into "
                  "<store>/quarantine/ so later runs recompute them",
                  &repair);
  if (!parser.parse(static_cast<int>(rest.size()), rest.data())) return 0;
  if (action.empty()) {
    throw ConfigError("cache needs an action: stats, verify, or gc");
  }
  store::ArtifactStore* store = store::active_store();
  if (store == nullptr) {
    throw ConfigError(
        "cache needs a store: pass --store DIR before the command or set "
        "ANACIN_STORE_DIR");
  }

  if (action == "stats") {
    const store::ObjectStore::Stats stats = store->objects().stats();
    out << "store root:     " << store->objects().root().string() << '\n'
        << "objects:        " << stats.objects << '\n'
        << "total bytes:    " << stats.total_bytes << '\n';
    for (const auto& [kind, count] : stats.kind_counts) {
      out << "  " << pad_right(kind, 16) << count << '\n';
    }
    out << "memory cache:   " << stats.memory_objects << " objects, "
        << stats.memory_bytes << " / " << stats.memory_max_bytes
        << " bytes\n";
    return 0;
  }
  if (action == "verify") {
    if (repair) {
      const store::ObjectStore::RepairReport report =
          store->objects().repair();
      out << "checked " << report.verified.checked << " objects: "
          << report.verified.corrupt.size() << " corrupt, "
          << report.verified.foreign.size() << " foreign; quarantined "
          << report.quarantined << '\n';
      for (const std::string& key : report.verified.corrupt) {
        out << "  quarantined corrupt: " << key << '\n';
      }
      for (const std::string& path : report.verified.foreign) {
        out << "  quarantined foreign: " << path << '\n';
      }
      for (const std::string& path : report.failed) {
        out << "  FAILED to quarantine: " << path << '\n';
      }
      return report.ok() ? 0 : 1;
    }
    const store::ObjectStore::VerifyReport report = store->objects().verify();
    out << "checked " << report.checked << " objects: "
        << report.corrupt.size() << " corrupt, " << report.foreign.size()
        << " foreign\n";
    for (const std::string& key : report.corrupt) {
      out << "  corrupt: " << key << '\n';
    }
    for (const std::string& path : report.foreign) {
      out << "  foreign: " << path << '\n';
    }
    return report.ok() ? 0 : 1;
  }
  if (action == "gc") {
    if (max_bytes == std::numeric_limits<std::uint64_t>::max()) {
      throw ConfigError("cache gc requires --max-bytes");
    }
    const store::ObjectStore::GcReport report =
        store->objects().gc(max_bytes);
    out << "removed " << report.removed_objects << " objects ("
        << report.removed_bytes << " bytes); " << report.remaining_objects
        << " objects (" << report.remaining_bytes << " bytes) remain";
    if (report.removed_temp_files > 0) {
      out << "; swept " << report.removed_temp_files << " stale temp file(s)";
    }
    out << '\n';
    return 0;
  }
  throw ConfigError("unknown cache action '" + action +
                    "' (expected stats, verify, or gc)");
}

/// Internal entry point of --isolate=process worker children (spawned by
/// proc::WorkerPool, never typed by a user — hence absent from kUsage).
/// Serves work-unit requests over stdin/stdout until the parent closes
/// the pipe.
int cmd_worker(const std::vector<const char*>& argv) {
  double heartbeat_ms = 50.0;
  ArgParser parser(
      "anacin __worker — internal: serve isolated work units over "
      "stdin/stdout (spawned by --isolate=process)");
  parser.add_double("heartbeat-ms", "heartbeat interval in milliseconds",
                    &heartbeat_ms);
  if (!parser.parse(static_cast<int>(argv.size()), argv.data())) return 0;
  ANACIN_CHECK(heartbeat_ms > 0.0, "--heartbeat-ms must be > 0");
  store::ArtifactStore* store = store::active_store();
  if (store == nullptr) {
    throw ConfigError("__worker requires the shared artifact store "
                      "(--store DIR before the command)");
  }
  return proc::worker_main(*store, heartbeat_ms);
}

const char kUsage[] =
    "anacin — analysis of non-determinism in (simulated) MPI applications\n"
    "\n"
    "usage: anacin [global options] <command> [options]\n"
    "       (anacin <command> --help for details)\n"
    "\n"
    "global options (before the command):\n"
    "  --metrics-out FILE   write a JSON metrics snapshot on exit\n"
    "  --trace-out FILE     record spans; write a Chrome trace-event JSON\n"
    "                       (open in chrome://tracing or ui.perfetto.dev)\n"
    "  --store DIR          content-addressed artifact store: simulations\n"
    "                       and kernel distances are cached and reused\n"
    "                       (defaults to $ANACIN_STORE_DIR when set)\n"
    "  --no-store           disable the store even if ANACIN_STORE_DIR is set\n"
    "  --store-max-bytes N  in-memory cache budget of the store (default\n"
    "                       268435456 = 256 MiB; disk usage is unbounded —\n"
    "                       prune with `anacin cache gc`)\n"
    "  --durability LEVEL   none (default) | commit | paranoid: fsync\n"
    "                       discipline at durable commit points (journal,\n"
    "                       reports, store index; paranoid adds store\n"
    "                       object publishes) — docs/RESILIENCE.md\n"
    "  --io-chaos SPEC      seeded disk fault injection, e.g.\n"
    "                       \"seed=7,enospc=0.05,eio=0.01,rename_fail=0.02,\n"
    "                       fsync_drop=0.1,crash_after=12,scope=store\"\n"
    "                       (also via ANACIN_IO_CHAOS; --io-chaos-KEY VALUE\n"
    "                       overrides single fields, e.g.\n"
    "                       --io-chaos-crash-after 12)\n"
    "\n"
    "fault injection (run / measure / sweep):\n"
    "  --fault-drop P       message drop probability [0..1]; in `sweep`,\n"
    "                       lo:hi:step sweeps the drop axis instead of ND%\n"
    "  --fault-dup P        message duplication probability [0..1]\n"
    "  --fault-retries N    max retransmissions of a dropped message\n"
    "  --fault-timeout US   retransmit timeout in microseconds\n"
    "  --stragglers LIST    comma-separated rank ids with slowed compute\n"
    "  --straggler-factor F compute slowdown of straggler ranks\n"
    "  --slow-nodes LIST    comma-separated node ids slowed end-to-end\n"
    "  --slow-factor F      compute+latency slowdown of slow nodes\n"
    "\n"
    "resilience (measure / sweep; see docs/RESILIENCE.md):\n"
    "  --keep-going         quarantine failed work units, finish with the\n"
    "                       survivors, and exit 2 (default: fail fast)\n"
    "  --max-retries N      retries per work unit after transient failures\n"
    "  --backoff-us US      first retry backoff (doubles per retry)\n"
    "  --run-deadline-ms MS per-attempt wall-clock deadline (0 = none);\n"
    "                       preemptive (SIGKILL) under --isolate=process\n"
    "  --isolate MODE       none (default) | process: execute work units in\n"
    "                       sandboxed fork/exec'd worker children with a\n"
    "                       watchdog and crash triage (requires --store)\n"
    "  --unit-mem-limit N   RLIMIT_AS per worker child in bytes (0 = none;\n"
    "                       only with --isolate=process)\n"
    "  --journal FILE       sweep: crash-consistent journal of completed\n"
    "                       points; --resume replays it after a crash\n"
    "  exit codes: 0 ok, 1 error, 2 partial results, 64 usage,\n"
    "              130 interrupted (SIGINT drains in-flight work first),\n"
    "              143 terminated (SIGTERM, same graceful drain)\n"
    "\n"
    "commands:\n"
    "  patterns    list the packaged mini-applications\n"
    "  run         simulate one execution (trace / ASCII / SVG outputs)\n"
    "  graph       inspect a saved trace\n"
    "  measure     quantify non-determinism over repeated executions\n"
    "  sweep       kernel distance vs ND%% (paper Fig 7)\n"
    "  serve       run a sweep as a scheduler farming work units to agent\n"
    "              fleets over TCP (see docs/DISTRIBUTED.md)\n"
    "  agent       join a scheduler and execute its work units against the\n"
    "              local artifact store\n"
    "  rootcause   callstack attribution in high-ND regions (paper Fig 8)\n"
    "  replay      record-and-replay (ReMPI-style suppression)\n"
    "  bisect      delta-debug recorded wildcard matches to the minimal\n"
    "              racy set and rank root causes (see docs/REPLAY.md)\n"
    "  course      course-module tables, schedule, and use cases\n"
    "  quiz        comprehension questions with automatic grading\n"
    "  report      self-contained HTML analysis report (notebook-style)\n"
    "  figures     index of the reproduced paper tables and figures\n"
    "  cache       artifact-store maintenance: stats, verify [--repair], gc\n";

/// Global options, parsed before the subcommand name.
struct GlobalOptions {
  std::string metrics_out;
  std::string trace_out;
  /// Artifact-store directory; empty disables incremental execution.
  std::string store_dir;
  bool no_store = false;
  std::uint64_t store_max_bytes = 256ull << 20;
  /// --durability level; empty keeps the environment/default (none).
  std::string durability;
  /// Full --io-chaos spec (same grammar as ANACIN_IO_CHAOS); overrides
  /// the environment wholesale when given.
  std::string io_chaos_spec;
  /// Field-by-field --io-chaos-KEY overrides, applied on top of the env
  /// spec (or the flag spec) in command-line order.
  std::vector<std::pair<std::string, std::string>> io_chaos_fields;
};

int dispatch(const std::string& command, const std::vector<const char*>& rest,
             std::ostream& out, std::ostream& err) {
  if (command == "help" || command == "--help" || command == "-h") {
    out << kUsage;
    return 0;
  }
  if (command == "patterns") return cmd_patterns(rest, out);
  if (command == "run") return cmd_run(rest, out);
  if (command == "graph") return cmd_graph(rest, out);
  if (command == "measure") return cmd_measure(rest, out);
  if (command == "sweep") return cmd_sweep(rest, out);
  if (command == "serve") return cmd_serve(rest, out);
  if (command == "agent") return cmd_agent(rest, out);
  if (command == "rootcause") return cmd_rootcause(rest, out);
  if (command == "replay") return cmd_replay(rest, out);
  if (command == "bisect") return cmd_bisect(rest, out);
  if (command == "course") return cmd_course(rest, out);
  if (command == "quiz") return cmd_quiz(rest, out);
  if (command == "report") return cmd_report(rest, out);
  if (command == "figures") return cmd_figures(rest, out);
  if (command == "cache") return cmd_cache(rest, out);
  if (command == "__worker") return cmd_worker(rest);
  err << "unknown command '" << command << "'\n\n" << kUsage;
  return kExitUsage;
}

/// Consume leading global options; returns the index of the subcommand
/// name (or argc when none is left).
int parse_global_options(int argc, const char* const* argv,
                         GlobalOptions* options) {
  std::string store_max_bytes_text;
  bool store_max_bytes_given = false;
  int index = 1;
  while (index < argc) {
    const std::string_view arg = argv[index];
    const auto take = [&](std::string_view flag, std::string* value,
                          std::string_view operand) {
      if (arg == flag) {
        if (index + 1 >= argc) {
          throw ConfigError(std::string(flag) + " requires " +
                            std::string(operand));
        }
        *value = argv[index + 1];
        index += 2;
        return true;
      }
      if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
          arg[flag.size()] == '=') {
        *value = std::string(arg.substr(flag.size() + 1));
        ++index;
        return true;
      }
      return false;
    };
    if (take("--metrics-out", &options->metrics_out, "a file path")) continue;
    if (take("--trace-out", &options->trace_out, "a file path")) continue;
    if (take("--store", &options->store_dir, "a directory path")) continue;
    if (take("--store-max-bytes", &store_max_bytes_text, "a byte count")) {
      store_max_bytes_given = true;
      continue;
    }
    if (take("--durability", &options->durability,
             "none, commit, or paranoid")) {
      continue;
    }
    if (take("--io-chaos", &options->io_chaos_spec, "a chaos spec")) continue;
    {
      // --io-chaos-KEY VALUE maps onto the spec key KEY (dashes become
      // underscores), overriding ANACIN_IO_CHAOS field-by-field like the
      // net-chaos CLI flags do.
      constexpr std::string_view kIoChaosPrefix = "--io-chaos-";
      if (arg.size() > kIoChaosPrefix.size() &&
          arg.substr(0, kIoChaosPrefix.size()) == kIoChaosPrefix) {
        std::string key;
        std::string value;
        const std::size_t eq = arg.find('=');
        if (eq != std::string_view::npos) {
          key = std::string(arg.substr(kIoChaosPrefix.size(),
                                       eq - kIoChaosPrefix.size()));
          value = std::string(arg.substr(eq + 1));
          ++index;
        } else {
          key = std::string(arg.substr(kIoChaosPrefix.size()));
          if (index + 1 >= argc) {
            throw ConfigError(std::string(arg) + " requires a value");
          }
          value = argv[index + 1];
          index += 2;
        }
        for (char& c : key) {
          if (c == '-') c = '_';
        }
        options->io_chaos_fields.emplace_back(std::move(key),
                                              std::move(value));
        continue;
      }
    }
    if (arg == "--no-store") {
      options->no_store = true;
      ++index;
      continue;
    }
    break;
  }
  if (store_max_bytes_given) {
    // Strict parse: "", "10abc", and "-1" are errors, not defaults.
    options->store_max_bytes =
        parse_uint64_strict(store_max_bytes_text, "--store-max-bytes");
  }
  // Opt-in default so cron jobs / CI can turn on caching fleet-wide
  // without touching every invocation.
  if (options->store_dir.empty() && !options->no_store) {
    if (const char* env = std::getenv("ANACIN_STORE_DIR");
        env != nullptr && env[0] != '\0') {
      options->store_dir = env;
    }
  }
  if (options->no_store) options->store_dir.clear();
  return index;
}

/// Clears the process-global store pointer on scope exit (the store object
/// itself lives in run_cli and must outlive every campaign).
struct ActiveStoreGuard {
  ~ActiveStoreGuard() { store::set_active_store(nullptr); }
};

}  // namespace

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  try {
    GlobalOptions global_options;
    const int command_index = parse_global_options(argc, argv, &global_options);
    if (command_index >= argc) {
      out << kUsage;
      return 0;
    }
    if (!global_options.trace_out.empty()) {
      obs::Tracer::global().set_enabled(true);
    }
    // Durability and disk chaos install process-wide BEFORE the store is
    // constructed (store construction may already write the index) and
    // are re-exported into the environment so forked worker children and
    // spawned agents inherit the exact same configuration.
    if (!global_options.durability.empty()) {
      support::set_durability(
          support::parse_durability(global_options.durability));
      ::setenv("ANACIN_DURABILITY", global_options.durability.c_str(), 1);
    }
    {
      std::optional<support::IoChaosConfig> io_chaos =
          global_options.io_chaos_spec.empty()
              ? support::IoChaosConfig::from_env()
              : std::optional<support::IoChaosConfig>(
                    support::IoChaosConfig::parse(
                        global_options.io_chaos_spec));
      if (!global_options.io_chaos_fields.empty()) {
        if (!io_chaos.has_value()) io_chaos.emplace();
        for (const auto& [key, value] : global_options.io_chaos_fields) {
          io_chaos->apply(key, value);
        }
      }
      if (io_chaos.has_value()) {
        support::install_io_chaos(io_chaos);
        ::setenv("ANACIN_IO_CHAOS", io_chaos->spec().c_str(), 1);
      }
    }
    const std::string command = argv[command_index];
    std::unique_ptr<store::ArtifactStore> artifact_store;
    ActiveStoreGuard store_guard;
    if (!global_options.store_dir.empty()) {
      store::ObjectStore::Config store_config{global_options.store_dir,
                                              global_options.store_max_bytes};
      // Worker children share one store root with the campaign process and
      // their siblings; object publishes are rename-atomic, but the index
      // temp file is a fixed path concurrent writers would race on.
      store_config.persist_index = command != "__worker";
      artifact_store =
          std::make_unique<store::ArtifactStore>(std::move(store_config));
      store::set_active_store(artifact_store.get());
    }
    // Re-pack as "<prog> <args...>" for the subcommand parser.
    std::vector<const char*> rest;
    rest.push_back(argv[0]);
    for (int i = command_index + 1; i < argc; ++i) rest.push_back(argv[i]);

    const int code = dispatch(command, rest, out, err);

    if (!global_options.metrics_out.empty()) {
      // Export the durability layer's own counters into the snapshot.
      // io.durable_ops is what the crash-consistency explorer sweeps:
      // re-running with --io-chaos-crash-after k for every k in [1, N]
      // covers every durable commit point of this invocation. (The
      // metrics write below happens after the snapshot, so N excludes
      // it — exactly the ops a chaos re-run without --metrics-out sees.)
      obs::counter("fs.atomic_writes").add(support::atomic_write_count());
      obs::counter("io.durable_ops")
          .add(support::io_chaos::durable_op_count());
      obs::counter("io.chaos_faults_injected")
          .add(support::io_chaos::injected_fault_count());
      core::write_json_file(global_options.metrics_out,
                            obs::Registry::global().snapshot_json());
      out << "metrics written to " << global_options.metrics_out << '\n';
    }
    if (!global_options.trace_out.empty()) {
      core::write_json_file(global_options.trace_out,
                            obs::Tracer::global().chrome_trace_json());
      out << "trace written to " << global_options.trace_out << '\n';
    }
    return code;
  } catch (const InterruptedError& error) {
    err << "interrupted: " << error.what() << '\n';
    return interrupted_exit_code();
  } catch (const Error& error) {
    err << "error: " << error.what() << '\n';
    return kExitError;
  } catch (const std::exception& error) {
    err << "unexpected error: " << error.what() << '\n';
    return kExitError;
  }
}

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const std::string& arg : args) argv.push_back(arg.c_str());
  return run_cli(static_cast<int>(argv.size()), argv.data(), out, err);
}

}  // namespace anacin::cli

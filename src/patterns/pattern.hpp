#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace anacin::patterns {

/// Shape parameters of a mini-application run. These are exactly the knobs
/// the paper's course module exposes to students: number of MPI processes,
/// number of communication-pattern iterations, and message size — the
/// percentage of non-determinism and number of compute nodes live in
/// sim::SimConfig.
struct PatternConfig {
  int num_ranks = 4;
  /// How many times the communication pattern repeats within one run
  /// (paper: "number of communication pattern iterations").
  int iterations = 1;
  /// Payload size in bytes (the paper's figures use 1-byte messages).
  std::uint32_t message_bytes = 1;
  /// Topology seed for the unstructured mesh. Deliberately independent of
  /// the execution seed: the mesh is part of the *application*, so it must
  /// be identical across runs while the message timing varies.
  std::uint64_t topology_seed = 7;
  /// Extra random edges per rank in the unstructured mesh (on top of the
  /// connectivity ring).
  int mesh_extra_degree = 2;
  /// Per-iteration local work in virtual microseconds.
  double compute_us = 5.0;

  void validate() const;
  /// Complete canonical serialization — every field that shapes the rank
  /// program. This is the form hashed into artifact-store keys, so a new
  /// behavioral field MUST be added here too.
  json::Value to_json() const;
  /// Inverse of to_json (used by the --isolate=process worker protocol).
  static PatternConfig from_json(const json::Value& doc);
};

/// A named mini-application with a known communication pattern.
class Pattern {
public:
  virtual ~Pattern() = default;
  virtual std::string name() const = 0;
  virtual std::string description() const = 0;
  /// Build the rank program for a given shape. The returned program is a
  /// pure function of `config`, so the same config always yields the same
  /// application (only sim::SimConfig::seed varies across runs).
  virtual sim::RankProgram program(const PatternConfig& config) const = 0;
};

/// Mini-apps packaged with this reproduction (mirroring ANACIN-X):
///  - "message_race":      many senders race into one wildcard receiver
///  - "amg2013":           two all-to-all exchange phases per iteration
///  - "unstructured_mesh": randomized neighbor exchanges
///  - "ping_pong":         deterministic control (explicit sources)
///  - "reduce_tree":       wildcard-order accumulation (numerical ND demo)
std::unique_ptr<Pattern> make_pattern(const std::string& name);
std::vector<std::string> pattern_names();

}  // namespace anacin::patterns

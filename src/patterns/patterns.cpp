#include "patterns/pattern.hpp"

#include <algorithm>
#include <set>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace anacin::patterns {

void PatternConfig::validate() const {
  ANACIN_CHECK(num_ranks >= 1, "pattern needs at least one rank");
  ANACIN_CHECK(iterations >= 1, "pattern needs at least one iteration");
  ANACIN_CHECK(mesh_extra_degree >= 0, "mesh degree must be non-negative");
  ANACIN_CHECK(compute_us >= 0.0, "compute time must be non-negative");
}

json::Value PatternConfig::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("num_ranks", num_ranks);
  doc.set("iterations", iterations);
  doc.set("message_bytes", static_cast<std::int64_t>(message_bytes));
  doc.set("topology_seed", topology_seed);
  doc.set("mesh_extra_degree", mesh_extra_degree);
  doc.set("compute_us", compute_us);
  return doc;
}

PatternConfig PatternConfig::from_json(const json::Value& doc) {
  PatternConfig config;
  config.num_ranks = static_cast<int>(doc.at("num_ranks").as_int());
  config.iterations = static_cast<int>(doc.at("iterations").as_int());
  config.message_bytes =
      static_cast<std::uint32_t>(doc.at("message_bytes").as_int());
  config.topology_seed =
      static_cast<std::uint64_t>(doc.at("topology_seed").as_int());
  config.mesh_extra_degree =
      static_cast<int>(doc.at("mesh_extra_degree").as_int());
  config.compute_us = doc.at("compute_us").as_number();
  config.validate();
  return config;
}

namespace {

using sim::Comm;
using sim::kAnySource;
using sim::Payload;
using sim::Request;

// ---------------------------------------------------------------------------
// Message race: ranks 1..n-1 each send `iterations` messages to rank 0,
// which receives everything with MPI_ANY_SOURCE. The simplest racing
// pattern in the paper (Figs 2 and 4).
// ---------------------------------------------------------------------------
class MessageRace final : public Pattern {
public:
  std::string name() const override { return "message_race"; }
  std::string description() const override {
    return "ranks 1..n-1 race messages into rank 0's wildcard receives";
  }
  sim::RankProgram program(const PatternConfig& config) const override {
    config.validate();
    return [config](Comm& comm) {
      const auto app = comm.scoped_frame("message_race");
      const int n = comm.size();
      for (int iteration = 0; iteration < config.iterations; ++iteration) {
        if (comm.rank() == 0) {
          const auto site = comm.scoped_frame("race_recv");
          for (int i = 0; i < n - 1; ++i) (void)comm.recv(kAnySource, 0);
        } else {
          const auto site = comm.scoped_frame("race_send");
          comm.compute(config.compute_us);
          comm.send(0, 0, {}, config.message_bytes);
        }
      }
    };
  }
};

// ---------------------------------------------------------------------------
// AMG 2013 pattern: per iteration, two phases in which every process sends
// one message to every other process and receives with wildcards ("Each
// process in an AMG 2013 pattern does this twice").
// ---------------------------------------------------------------------------
class Amg2013 final : public Pattern {
public:
  std::string name() const override { return "amg2013"; }
  std::string description() const override {
    return "two all-to-all wildcard exchange phases per iteration (AMG 2013)";
  }
  sim::RankProgram program(const PatternConfig& config) const override {
    config.validate();
    return [config](Comm& comm) {
      const auto app = comm.scoped_frame("amg2013");
      const int n = comm.size();
      for (int iteration = 0; iteration < config.iterations; ++iteration) {
        for (int phase = 0; phase < 2; ++phase) {
          const auto site = comm.scoped_frame(phase == 0 ? "relax_phase"
                                                         : "restrict_phase");
          std::vector<Request> requests;
          requests.reserve(static_cast<std::size_t>(n) - 1);
          for (int i = 0; i < n - 1; ++i) {
            requests.push_back(comm.irecv(kAnySource, phase));
          }
          comm.compute(config.compute_us);
          for (int dst = 0; dst < n; ++dst) {
            if (dst == comm.rank()) continue;
            comm.send(dst, phase, {}, config.message_bytes);
          }
          (void)comm.wait_all(requests);
        }
      }
    };
  }
};

// ---------------------------------------------------------------------------
// Unstructured mesh: a fixed random neighbor topology (ring for
// connectivity plus `mesh_extra_degree` random chords per rank); per
// iteration every rank exchanges halos with its neighbors, receiving with
// wildcards. Randomizing which processes communicate mirrors the paper's
// description of the Chatterbug-style unstructured-mesh proxy.
// ---------------------------------------------------------------------------
std::vector<std::vector<int>> build_mesh_topology(int num_ranks,
                                                  std::uint64_t topology_seed,
                                                  int extra_degree) {
  std::vector<std::set<int>> neighbor_sets(
      static_cast<std::size_t>(num_ranks));
  if (num_ranks > 1) {
    for (int r = 0; r < num_ranks; ++r) {
      const int next = (r + 1) % num_ranks;
      if (next != r) {
        neighbor_sets[static_cast<std::size_t>(r)].insert(next);
        neighbor_sets[static_cast<std::size_t>(next)].insert(r);
      }
    }
    Rng rng = Rng(topology_seed).derive(0x4D455348ull);  // "MESH"
    for (int r = 0; r < num_ranks; ++r) {
      for (int k = 0; k < extra_degree; ++k) {
        const int other = static_cast<int>(rng.uniform_int(0, num_ranks - 1));
        if (other == r) continue;
        neighbor_sets[static_cast<std::size_t>(r)].insert(other);
        neighbor_sets[static_cast<std::size_t>(other)].insert(r);
      }
    }
  }
  std::vector<std::vector<int>> topology(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    topology[static_cast<std::size_t>(r)].assign(
        neighbor_sets[static_cast<std::size_t>(r)].begin(),
        neighbor_sets[static_cast<std::size_t>(r)].end());
  }
  return topology;
}

class UnstructuredMesh final : public Pattern {
public:
  std::string name() const override { return "unstructured_mesh"; }
  std::string description() const override {
    return "halo exchanges over a seeded random neighbor topology";
  }
  sim::RankProgram program(const PatternConfig& config) const override {
    config.validate();
    const auto topology = build_mesh_topology(
        config.num_ranks, config.topology_seed, config.mesh_extra_degree);
    return [config, topology](Comm& comm) {
      const auto app = comm.scoped_frame("unstructured_mesh");
      const auto& neighbors =
          topology[static_cast<std::size_t>(comm.rank())];
      for (int iteration = 0; iteration < config.iterations; ++iteration) {
        const auto site = comm.scoped_frame("halo_exchange");
        std::vector<Request> requests;
        requests.reserve(neighbors.size());
        for (std::size_t i = 0; i < neighbors.size(); ++i) {
          requests.push_back(comm.irecv(kAnySource, 0));
        }
        comm.compute(config.compute_us);
        for (const int neighbor : neighbors) {
          comm.send(neighbor, 0, {}, config.message_bytes);
        }
        (void)comm.wait_all(requests);
      }
    };
  }
};

// ---------------------------------------------------------------------------
// Ping-pong: neighbor pairs exchange with explicit sources — a
// deterministic control whose event graph is identical across runs for any
// nd_fraction (no wildcard receives means no matching races).
// ---------------------------------------------------------------------------
class PingPong final : public Pattern {
public:
  std::string name() const override { return "ping_pong"; }
  std::string description() const override {
    return "deterministic explicit-source pairwise exchanges (control)";
  }
  sim::RankProgram program(const PatternConfig& config) const override {
    config.validate();
    return [config](Comm& comm) {
      const auto app = comm.scoped_frame("ping_pong");
      const int n = comm.size();
      if (n < 2) return;
      const int partner = comm.rank() % 2 == 0
                              ? (comm.rank() + 1 < n ? comm.rank() + 1 : -1)
                              : comm.rank() - 1;
      if (partner < 0) return;  // odd rank count: last rank sits out
      for (int iteration = 0; iteration < config.iterations; ++iteration) {
        comm.compute(config.compute_us);
        if (comm.rank() % 2 == 0) {
          comm.send(partner, 0, {}, config.message_bytes);
          (void)comm.recv(partner, 0);
        } else {
          (void)comm.recv(partner, 0);
          comm.send(partner, 0, {}, config.message_bytes);
        }
      }
    };
  }
};

// ---------------------------------------------------------------------------
// Reduce tree: rank 0 accumulates one value per peer in *arrival order*
// through wildcard receives. The communication graph races like
// message_race, and the floating-point sum depends on the match order —
// the numerical-reproducibility failure mode of the paper's Enzo example.
// ---------------------------------------------------------------------------
class ReduceTree final : public Pattern {
public:
  std::string name() const override { return "reduce_tree"; }
  std::string description() const override {
    return "wildcard-order floating-point accumulation onto rank 0";
  }
  sim::RankProgram program(const PatternConfig& config) const override {
    config.validate();
    return [config](Comm& comm) {
      const auto app = comm.scoped_frame("reduce_tree");
      const int n = comm.size();
      for (int iteration = 0; iteration < config.iterations; ++iteration) {
        if (comm.rank() == 0) {
          const auto site = comm.scoped_frame("accumulate");
          double sum = 0.0;
          for (int i = 0; i < n - 1; ++i) {
            sum += sim::double_from_payload(comm.recv(kAnySource, 0).payload);
          }
          // Broadcast the (order-dependent) sum so iterations stay loosely
          // synchronized and every rank could observe the divergent value.
          (void)comm.broadcast(0, sim::payload_from_double(sum));
        } else {
          const auto site = comm.scoped_frame("contribute");
          comm.compute(config.compute_us);
          // Spread magnitudes so summation order changes the FP result.
          const double value =
              (1.0 + comm.rank()) * 1e-3 +
              (comm.rank() % 3 == 0 ? 1e8 : 1.0);
          comm.send(0, 0, sim::payload_from_double(value));
          (void)comm.broadcast(0, {});
        }
      }
    };
  }
};

// ---------------------------------------------------------------------------
// Probe race: the receiver uses MPI_Probe with ANY_SOURCE and then posts an
// explicit-source receive for whatever the probe saw. The receive itself
// names its source, so the race hides in the *probe* — a subtler root
// source than a wildcard receive, common in real work-queue codes.
// ---------------------------------------------------------------------------
class ProbeRace final : public Pattern {
public:
  std::string name() const override { return "probe_race"; }
  std::string description() const override {
    return "ANY_SOURCE probe followed by explicit-source receives";
  }
  sim::RankProgram program(const PatternConfig& config) const override {
    config.validate();
    return [config](Comm& comm) {
      const auto app = comm.scoped_frame("probe_race");
      const int n = comm.size();
      for (int iteration = 0; iteration < config.iterations; ++iteration) {
        if (comm.rank() == 0) {
          const auto site = comm.scoped_frame("drain_queue");
          for (int i = 0; i < n - 1; ++i) {
            const sim::ProbeResult envelope = comm.probe(sim::kAnySource, 0);
            (void)comm.recv(envelope.source, 0);
          }
        } else {
          const auto site = comm.scoped_frame("submit_work");
          comm.compute(config.compute_us);
          comm.send(0, 0, {}, config.message_bytes);
        }
      }
    };
  }
};

}  // namespace

std::unique_ptr<Pattern> make_pattern(const std::string& name) {
  if (name == "message_race") return std::make_unique<MessageRace>();
  if (name == "amg2013") return std::make_unique<Amg2013>();
  if (name == "unstructured_mesh") return std::make_unique<UnstructuredMesh>();
  if (name == "ping_pong") return std::make_unique<PingPong>();
  if (name == "reduce_tree") return std::make_unique<ReduceTree>();
  if (name == "probe_race") return std::make_unique<ProbeRace>();
  throw ConfigError("unknown pattern '" + name + "'");
}

std::vector<std::string> pattern_names() {
  return {"message_race", "amg2013", "unstructured_mesh", "ping_pong",
          "reduce_tree", "probe_race"};
}

}  // namespace anacin::patterns

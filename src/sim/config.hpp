#pragma once

#include <cstdint>

#include "sim/faults.hpp"
#include "support/json.hpp"

namespace anacin::sim {

struct ReplaySchedule;  // sim/replay_schedule.hpp

/// Parameters of the simulated interconnect and of the delay-injection
/// model that produces controllable non-determinism.
///
/// The paper's "percentage of non-determinism" is `nd_fraction`: the
/// probability that an individual message suffers a random congestion /
/// contention delay on top of its deterministic base latency. With
/// `nd_fraction == 0` every run of a program is bit-identical; with 1.0
/// every message is eligible for jitter, reproducing the "100%
/// non-determinism" setting used throughout the paper's figures.
struct NetworkConfig {
  /// Fixed virtual-time cost of issuing a send / completing a receive (µs).
  double send_overhead_us = 0.05;
  double recv_overhead_us = 0.05;
  /// Base one-way latency between ranks on the same / different nodes (µs).
  double latency_intra_us = 1.0;
  double latency_inter_us = 5.0;
  /// Serialization cost per byte (bytes per µs).
  double bandwidth_bytes_per_us = 10000.0;
  /// Fraction of messages eligible for congestion jitter, in [0, 1].
  double nd_fraction = 1.0;
  /// Mean of the exponentially distributed jitter (µs). Inter-node links
  /// see larger jitter, modelling the paper's observation that runs across
  /// multiple compute nodes are more likely to be non-deterministic.
  double jitter_mean_intra_us = 20.0;
  double jitter_mean_inter_us = 80.0;
  /// Congestion on shared inter-node links is also more *likely*: the
  /// effective jitter probability of an inter-node message is
  /// min(1, nd_fraction * inter_node_nd_multiplier).
  double inter_node_nd_multiplier = 2.0;

  void validate() const;
  json::Value to_json() const;
  static NetworkConfig from_json(const json::Value& doc);
};

/// Full configuration of one simulated execution.
struct SimConfig {
  int num_ranks = 2;
  /// Ranks are block-mapped onto nodes: node(r) = r / ceil(ranks/nodes).
  int num_nodes = 1;
  /// Seed of all randomness in the run (jitter + per-rank program RNGs).
  /// Two runs with identical programs and identical seeds produce
  /// identical traces; varying the seed across runs models independent
  /// executions on a noisy machine.
  std::uint64_t seed = 1;
  NetworkConfig network;
  /// Deterministic fault injection (drops/retransmits, duplicates,
  /// stragglers, slow nodes). All-defaults means no faults — and a run
  /// then matches the fault-free engine bit for bit.
  FaultConfig faults;
  /// Guard against runaway programs: maximum number of MPI calls processed.
  std::uint64_t max_calls = 50'000'000;
  /// Optional record-and-replay schedule; when set, wildcard receives are
  /// forced to match the recorded message order (ReMPI-style).
  const ReplaySchedule* replay = nullptr;

  void validate() const;
  /// Node of a rank under the block mapping.
  int node_of(int rank) const;
  json::Value to_json() const;
  /// Inverse of to_json (used by the --isolate=process worker protocol,
  /// which ships the fully resolved config to the child). Replay
  /// schedules do not serialize: a document with "replay": true is a
  /// ConfigError.
  static SimConfig from_json(const json::Value& doc);
};

}  // namespace anacin::sim

#pragma once

#include "sim/comm.hpp"
#include "sim/engine.hpp"

namespace anacin::sim {

/// Run `program` on `config.num_ranks` simulated MPI processes.
///
/// The result is a pure function of (program, config): identical inputs
/// give bit-identical traces. Vary `config.seed` to model independent
/// executions of the same application on a noisy platform.
RunResult run_simulation(const SimConfig& config, const RankProgram& program);

}  // namespace anacin::sim

#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hpp"
#include "support/rng.hpp"

namespace anacin::sim {

class Engine;
class Comm;

/// RAII handle pushing a named frame onto the rank's simulated callstack.
/// Every MPI event recorded while the scope is alive carries the frame in
/// its call path — this is how the root-cause analysis (paper Fig. 8)
/// attributes non-determinism to source locations.
class CallScope {
public:
  CallScope(CallScope&& other) noexcept : comm_(other.comm_) {
    other.comm_ = nullptr;
  }
  CallScope& operator=(CallScope&&) = delete;
  CallScope(const CallScope&) = delete;
  CallScope& operator=(const CallScope&) = delete;
  ~CallScope();

private:
  friend class Comm;
  explicit CallScope(Comm* comm) : comm_(comm) {}
  Comm* comm_;
};

/// Communication interface handed to simulated rank programs.
///
/// The API mirrors the MPI point-to-point calls the paper's course module
/// teaches (Send/Isend/Ssend/Recv/Irecv/Wait/Waitany/Waitall with
/// MPI_ANY_SOURCE and MPI_ANY_TAG), plus a set of collectives composed
/// from point-to-point messages. All virtual time and randomness is managed
/// by the engine, so a program using only this interface is reproducible
/// from the run seed.
class Comm {
public:
  Comm(Engine* engine, int rank);

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  int rank() const { return rank_; }
  int size() const;
  /// Compute node hosting this rank (block mapping).
  int node() const;
  int num_nodes() const;

  /// Advance this rank's virtual clock by `microseconds` of local work.
  void compute(double microseconds);

  /// Buffered send: completes locally, message delivered asynchronously.
  void send(int dest, int tag = 0, Payload payload = {},
            std::uint32_t size_hint = 0);
  /// Nonblocking buffered send; retire with wait().
  [[nodiscard]] Request isend(int dest, int tag = 0, Payload payload = {},
                              std::uint32_t size_hint = 0);
  /// Synchronous send: blocks until the message is matched by a receive.
  void ssend(int dest, int tag = 0, Payload payload = {},
             std::uint32_t size_hint = 0);
  /// Nonblocking synchronous send; the request completes at match time.
  [[nodiscard]] Request issend(int dest, int tag = 0, Payload payload = {},
                               std::uint32_t size_hint = 0);

  /// Blocking receive. `source`/`tag` may be kAnySource / kAnyTag.
  RecvResult recv(int source = kAnySource, int tag = kAnyTag);
  /// Nonblocking receive; retire with wait()/wait_any()/wait_all().
  [[nodiscard]] Request irecv(int source = kAnySource, int tag = kAnyTag);

  RecvResult wait(Request request);
  WaitAnyResult wait_any(std::span<const Request> requests);
  std::vector<RecvResult> wait_all(std::span<const Request> requests);

  /// Block until a matching message is available without receiving it
  /// (mirrors MPI_Probe). Probe-then-recv(source) is itself a root source
  /// of non-determinism when used with kAnySource.
  ProbeResult probe(int source = kAnySource, int tag = kAnyTag);
  /// Nonblocking probe; empty when no matching message has arrived yet.
  std::optional<ProbeResult> iprobe(int source = kAnySource,
                                    int tag = kAnyTag);

  /// Combined send+receive without deadlock (mirrors MPI_Sendrecv).
  RecvResult sendrecv(int dest, int send_tag, Payload payload, int source,
                      int recv_tag);

  // --- collectives, composed from point-to-point messages -----------------
  /// Reduction operators for reduce/allreduce/scan.
  enum class ReduceOp { kSum, kMin, kMax };

  /// Dissemination barrier.
  void barrier();
  /// Binary-tree broadcast; returns the root's payload on every rank.
  Payload broadcast(int root, Payload value = {});
  /// Binary-tree reduction; result valid on root only (0.0 elsewhere).
  /// Children combine in a fixed order, so floating-point results are
  /// bit-stable across runs.
  double reduce(int root, double value, ReduceOp op);
  double reduce_sum(int root, double value);
  /// reduce to rank 0 followed by a broadcast.
  double allreduce(double value, ReduceOp op);
  double allreduce_sum(double value);
  /// Gather payloads to root; on root, result[i] is rank i's payload.
  std::vector<Payload> gather(int root, Payload value);
  /// Gather to rank 0 then broadcast: every rank gets all payloads.
  std::vector<Payload> allgather(Payload value);
  /// Root sends chunks[i] to rank i; returns this rank's chunk.
  Payload scatter(int root, std::vector<Payload> chunks = {});
  /// Inclusive prefix sum: rank r gets sum of values from ranks 0..r.
  double scan_sum(double value);
  /// Personalized all-to-all exchange; send_buffers[i] goes to rank i,
  /// result[i] came from rank i.
  std::vector<Payload> all_to_all(std::vector<Payload> send_buffers);

  // --- instrumentation -----------------------------------------------------
  /// Push a named frame for root-cause callstack attribution.
  [[nodiscard]] CallScope scoped_frame(std::string_view name);
  /// Deterministic per-rank random stream (varies with the run seed).
  Rng& rng();

private:
  friend class CallScope;
  void pop_frame();
  int next_collective_tag();

  Engine* engine_;
  int rank_;
  int collective_counter_ = 0;
};

}  // namespace anacin::sim

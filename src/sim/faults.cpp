#include "sim/faults.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace anacin::sim {

namespace {

json::Value int_array(const std::vector<int>& values) {
  json::Value out = json::Value::array();
  for (const int value : values) out.push_back(json::Value(value));
  return out;
}

std::vector<int> int_vector(const json::Value& doc) {
  std::vector<int> out;
  out.reserve(doc.size());
  for (std::size_t i = 0; i < doc.size(); ++i) {
    out.push_back(static_cast<int>(doc.at(i).as_number()));
  }
  return out;
}

void check_ids_in_range(const std::vector<int>& ids, int limit,
                        const char* what) {
  for (const int id : ids) {
    ANACIN_CHECK(id >= 0 && id < limit,
                 what << " " << id << " out of range [0, " << limit << ")");
  }
}

}  // namespace

bool FaultConfig::enabled() const {
  return drop_probability > 0.0 || duplicate_probability > 0.0 ||
         (!straggler_ranks.empty() && straggler_multiplier > 1.0) ||
         (!slow_nodes.empty() && node_slowdown_multiplier > 1.0);
}

void FaultConfig::validate(int num_ranks, int num_nodes) const {
  ANACIN_CHECK(drop_probability >= 0.0 && drop_probability <= 1.0,
               "drop_probability must be in [0,1], got " << drop_probability);
  ANACIN_CHECK(duplicate_probability >= 0.0 && duplicate_probability <= 1.0,
               "duplicate_probability must be in [0,1], got "
                   << duplicate_probability);
  ANACIN_CHECK(max_retries >= 0,
               "max_retries must be >= 0, got " << max_retries);
  ANACIN_CHECK(retry_timeout_us >= 0.0,
               "retry_timeout_us must be >= 0, got " << retry_timeout_us);
  ANACIN_CHECK(straggler_multiplier >= 1.0,
               "straggler_multiplier must be >= 1, got "
                   << straggler_multiplier);
  ANACIN_CHECK(node_slowdown_multiplier >= 1.0,
               "node_slowdown_multiplier must be >= 1, got "
                   << node_slowdown_multiplier);
  check_ids_in_range(straggler_ranks, num_ranks, "straggler rank");
  check_ids_in_range(slow_nodes, num_nodes, "slow node");
}

json::Value FaultConfig::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("drop_probability", drop_probability);
  doc.set("max_retries", max_retries);
  doc.set("retry_timeout_us", retry_timeout_us);
  doc.set("duplicate_probability", duplicate_probability);
  doc.set("straggler_ranks", int_array(straggler_ranks));
  doc.set("straggler_multiplier", straggler_multiplier);
  doc.set("slow_nodes", int_array(slow_nodes));
  doc.set("node_slowdown_multiplier", node_slowdown_multiplier);
  return doc;
}

FaultConfig FaultConfig::from_json(const json::Value& doc) {
  FaultConfig config;
  config.drop_probability = doc.at("drop_probability").as_number();
  config.max_retries = static_cast<int>(doc.at("max_retries").as_number());
  config.retry_timeout_us = doc.at("retry_timeout_us").as_number();
  config.duplicate_probability = doc.at("duplicate_probability").as_number();
  config.straggler_ranks = int_vector(doc.at("straggler_ranks"));
  config.straggler_multiplier = doc.at("straggler_multiplier").as_number();
  config.slow_nodes = int_vector(doc.at("slow_nodes"));
  config.node_slowdown_multiplier =
      doc.at("node_slowdown_multiplier").as_number();
  return config;
}

FaultModel::FaultModel(const FaultConfig& config, int num_ranks,
                       int num_nodes, Rng rng)
    : config_(config), num_ranks_(num_ranks), rng_(rng) {
  config_.validate(num_ranks, num_nodes);
  ranks_per_node_ = (num_ranks + num_nodes - 1) / num_nodes;
  straggler_.assign(static_cast<std::size_t>(num_ranks), 0);
  for (const int rank : config_.straggler_ranks) {
    straggler_[static_cast<std::size_t>(rank)] = 1;
  }
  slow_node_.assign(static_cast<std::size_t>(num_nodes), 0);
  for (const int node : config_.slow_nodes) {
    slow_node_[static_cast<std::size_t>(node)] = 1;
  }
}

bool FaultModel::is_straggler(int rank) const {
  ANACIN_CHECK(rank >= 0 && rank < num_ranks_,
               "rank " << rank << " out of range");
  return straggler_[static_cast<std::size_t>(rank)] != 0;
}

bool FaultModel::on_slow_node(int rank) const {
  ANACIN_CHECK(rank >= 0 && rank < num_ranks_,
               "rank " << rank << " out of range");
  return slow_node_[static_cast<std::size_t>(rank / ranks_per_node_)] != 0;
}

FaultModel::MessageFate FaultModel::sample_message(int src_rank,
                                                   int dst_rank) {
  ANACIN_CHECK(src_rank >= 0 && src_rank < num_ranks_ && dst_rank >= 0 &&
                   dst_rank < num_ranks_,
               "message endpoints out of range");
  MessageFate fate;
  if (config_.drop_probability > 0.0) {
    // Each attempt drops independently; after max_retries retransmissions
    // the next attempt is forced through, bounding delivery latency at
    // max_retries * retry_timeout_us + network delay.
    for (int attempt = 0; attempt < config_.max_retries; ++attempt) {
      if (!rng_.bernoulli(config_.drop_probability)) break;
      ++fate.dropped_attempts;
    }
  }
  if (config_.duplicate_probability > 0.0 &&
      rng_.bernoulli(config_.duplicate_probability)) {
    fate.duplicated = true;
    const double mean = std::max(config_.retry_timeout_us, 1.0);
    fate.duplicate_extra_delay_us = rng_.exponential(mean);
  }
  return fate;
}

double FaultModel::compute_multiplier(int rank) const {
  double multiplier = 1.0;
  if (is_straggler(rank)) multiplier *= config_.straggler_multiplier;
  if (on_slow_node(rank)) multiplier *= config_.node_slowdown_multiplier;
  return multiplier;
}

double FaultModel::latency_multiplier(int src_rank, int dst_rank) const {
  return on_slow_node(src_rank) || on_slow_node(dst_rank)
             ? config_.node_slowdown_multiplier
             : 1.0;
}

}  // namespace anacin::sim

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace anacin::sim {

/// Wildcard source for receive matching (mirrors MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;
/// Wildcard tag for receive matching (mirrors MPI_ANY_TAG).
inline constexpr int kAnyTag = -1;

/// First tag value reserved for the collective implementations layered on
/// point-to-point messaging. User programs must use tags below this value.
inline constexpr int kCollectiveTagBase = 1 << 20;

/// Message payload carried by simulated point-to-point messages.
using Payload = std::vector<std::byte>;

/// Pack helpers — simulated applications mostly ship doubles and integers.
Payload payload_from_double(double value);
Payload payload_from_doubles(std::span<const double> values);
Payload payload_from_u64(std::uint64_t value);
Payload payload_from_string(std::string_view text);
/// An uninitialized-content payload of a given size (for sizing experiments).
Payload payload_of_size(std::size_t bytes);

double double_from_payload(const Payload& payload);
std::vector<double> doubles_from_payload(const Payload& payload);
std::uint64_t u64_from_payload(const Payload& payload);
std::string string_from_payload(const Payload& payload);

/// Result of a completed receive.
struct RecvResult {
  int source = -1;
  int tag = -1;
  Payload payload;
  /// Virtual time at which the receiving rank observed completion.
  double time = 0.0;
};

/// Opaque handle to an outstanding nonblocking operation. Handles are
/// rank-local and must be retired by exactly one wait call on the rank
/// that created them.
class Request {
public:
  Request() = default;
  bool valid() const { return id_ != 0; }

private:
  friend class Engine;
  friend class Comm;
  explicit Request(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

struct WaitAnyResult {
  /// Index into the span passed to wait_any.
  std::size_t index = 0;
  RecvResult result;
};

/// Envelope information returned by probe/iprobe (mirrors MPI_Status after
/// MPI_Probe): the message stays queued and must still be received.
struct ProbeResult {
  int source = -1;
  int tag = -1;
  std::uint32_t size_bytes = 0;
};

}  // namespace anacin::sim

#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "obs/obs.hpp"
#include "sim/comm.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "trace/callstack.hpp"

namespace anacin::sim {

namespace {

/// Minimum spacing between deliveries in the same (src, dst) channel.
/// Enforces the MPI non-overtaking rule: matching order per channel equals
/// send order, even when jitter would reorder raw network arrival.
constexpr double kChannelFifoEpsilon = 1e-9;

SimConfig validated(SimConfig config) {
  config.validate();
  return config;
}

}  // namespace

Engine::Engine(SimConfig config, RankProgram program)
    : config_(validated(std::move(config))),
      program_(std::move(program)),
      network_(config_.network, config_,
               Rng(config_.seed).derive(0xC0FFEEull)),
      // The fault model draws from its own derived stream: enabling or
      // disabling faults never shifts the network/rank RNG sequences.
      faults_(config_.faults, config_.num_ranks, config_.num_nodes,
              Rng(config_.seed).derive(0xFA017Bull)),
      trace_(config_.num_ranks, config_.num_nodes),
      replay_(config_.replay) {
  ANACIN_CHECK(program_ != nullptr, "rank program must be callable");
  ranks_.reserve(static_cast<std::size_t>(config_.num_ranks));
  for (int r = 0; r < config_.num_ranks; ++r) {
    auto ctx = std::make_unique<RankCtx>();
    ctx->rank = r;
    ctx->rng = Rng(config_.seed)
                   .derive(hash_combine(0x52414E4Bull,
                                        static_cast<std::uint64_t>(r)));
    ranks_.push_back(std::move(ctx));
  }
}

Engine::~Engine() {
  if (threads_started_) {
    abort_all_ranks();
    for (auto& ctx : ranks_) {
      if (ctx->thread.joinable()) ctx->thread.join();
    }
  }
}

// --------------------------------------------------------------------------
// Token passing
// --------------------------------------------------------------------------

void Engine::resume_rank(RankCtx& ctx) {
  std::unique_lock<std::mutex> lock(mutex_);
  token_ = ctx.rank;
  cv_.notify_all();
  cv_.wait(lock, [this] { return token_ == kEngineToken; });
}

void Engine::yield_to_engine(int rank) {
  std::unique_lock<std::mutex> lock(mutex_);
  token_ = kEngineToken;
  cv_.notify_all();
  cv_.wait(lock, [this, rank] { return token_ == rank || aborting_; });
  if (aborting_) throw AbortSignal{};
}

void Engine::wait_for_token_initial(int rank) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this, rank] { return token_ == rank || aborting_; });
  if (aborting_) throw AbortSignal{};
}

void Engine::finish_rank_handshake(RankCtx& ctx) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ctx.finished = true;
  token_ = kEngineToken;
  cv_.notify_all();
}

void Engine::abort_all_ranks() {
  const std::lock_guard<std::mutex> lock(mutex_);
  aborting_ = true;
  cv_.notify_all();
}

void Engine::rank_thread_main(RankCtx& ctx) {
  try {
    wait_for_token_initial(ctx.rank);
    ctx.started = true;
    Comm comm(this, ctx.rank);
    program_(comm);
  } catch (const AbortSignal&) {
    // Engine-initiated teardown: exit without touching the token.
    ctx.aborted = true;
    return;
  } catch (...) {
    ctx.error = std::current_exception();
  }
  finish_rank_handshake(ctx);
}

// --------------------------------------------------------------------------
// Rank-side entry points (called on rank threads while they hold the token)
// --------------------------------------------------------------------------

void Engine::rank_call(int rank, Call& call) {
  RankCtx& ctx = *ranks_[static_cast<std::size_t>(rank)];
  ctx.call = &call;
  ctx.has_pending_call = true;
  ctx.call_done = false;
  yield_to_engine(rank);
  ANACIN_CHECK(ctx.call_done, "engine resumed rank " << rank
                                                     << " with incomplete call");
  ctx.call = nullptr;
}

void Engine::push_frame(int rank, std::string frame) {
  ranks_[static_cast<std::size_t>(rank)]->frames.push_back(std::move(frame));
}

void Engine::pop_frame(int rank) {
  auto& frames = ranks_[static_cast<std::size_t>(rank)]->frames;
  ANACIN_CHECK(!frames.empty(), "pop_frame with empty frame stack");
  frames.pop_back();
}

Rng& Engine::rank_rng(int rank) {
  return ranks_[static_cast<std::size_t>(rank)]->rng;
}

// --------------------------------------------------------------------------
// Engine mechanics
// --------------------------------------------------------------------------

RunResult Engine::run() {
  ANACIN_CHECK(!ran_, "Engine::run is single-use");
  ran_ = true;
  ANACIN_SPAN("sim.engine.run");
  const auto wall_start = std::chrono::steady_clock::now();
  record_init_events();

  for (auto& ctx : ranks_) {
    RankCtx* raw = ctx.get();
    ctx->thread = std::thread([this, raw] { rank_thread_main(*raw); });
  }
  threads_started_ = true;

  try {
    main_loop();
  } catch (...) {
    abort_all_ranks();
    for (auto& ctx : ranks_) {
      if (ctx->thread.joinable()) ctx->thread.join();
    }
    threads_started_ = false;
    throw;
  }

  for (auto& ctx : ranks_) {
    if (ctx->thread.joinable()) ctx->thread.join();
  }
  threads_started_ = false;

  stats_.calls = processed_calls_;
  stats_.matched_messages = matched_messages_;
  stats_.max_unexpected_depth = max_unexpected_depth_;
  stats_.makespan_us = trace_.makespan();

  // One registry update per run (the per-event counts are aggregated in
  // members above), so instrumentation cost is independent of trace size.
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  static obs::Counter& runs_counter = obs::counter("sim.engine.runs");
  static obs::Counter& events_counter = obs::counter("sim.engine.events");
  static obs::Counter& calls_counter = obs::counter("sim.engine.calls");
  static obs::Counter& messages_counter = obs::counter("sim.engine.messages");
  static obs::Counter& matched_counter =
      obs::counter("sim.engine.messages_matched");
  static obs::Counter& wildcard_counter =
      obs::counter("sim.engine.wildcard_recvs");
  static obs::Histogram& wall_histogram =
      obs::histogram("sim.engine.run_wall_ms");
  static obs::Histogram& unexpected_histogram =
      obs::histogram("sim.engine.max_unexpected_depth");
  static obs::Counter& drops_counter = obs::counter("sim.faults.drops");
  static obs::Counter& retries_counter = obs::counter("sim.faults.retries");
  static obs::Counter& duplicates_counter =
      obs::counter("sim.faults.duplicates");
  static obs::Counter& straggler_counter =
      obs::counter("sim.faults.straggler_events");
  runs_counter.add(1);
  drops_counter.add(stats_.drops);
  retries_counter.add(stats_.retries);
  duplicates_counter.add(stats_.duplicates);
  straggler_counter.add(stats_.straggler_events);
  events_counter.add(trace_.total_events());
  calls_counter.add(processed_calls_);
  messages_counter.add(stats_.messages);
  matched_counter.add(matched_messages_);
  wildcard_counter.add(stats_.wildcard_recvs);
  wall_histogram.observe(wall_ms);
  unexpected_histogram.observe(static_cast<double>(max_unexpected_depth_));

  return RunResult{std::move(trace_), stats_};
}

void Engine::main_loop() {
  for (;;) {
    RankCtx* next = nullptr;
    bool all_done = true;
    for (auto& ctx : ranks_) {
      if (ctx->state != RankState::kDone) all_done = false;
      if (ctx->state == RankState::kReady &&
          (next == nullptr || ctx->clock < next->clock)) {
        next = ctx.get();
      }
    }
    if (all_done) {
      // Spurious duplicate copies trail the real message by an extra delay
      // and can still be in flight once every rank has finalized. Deliver
      // them so duplicate accounting is deterministic; any other leftover
      // message is an unreceived send and stays dropped.
      while (!transit_.empty()) {
        if (transit_.front().msg.duplicate) {
          process_delivery();
        } else {
          (void)pop_transit();
        }
      }
      return;
    }

    const bool have_msg = !transit_.empty();
    if (next == nullptr && !have_msg) throw_deadlock();

    if (have_msg &&
        (next == nullptr || transit_.front().msg.deliver_time <= next->clock)) {
      process_delivery();
      continue;
    }
    step_rank(*next);
  }
}

void Engine::step_rank(RankCtx& ctx) {
  resume_rank(ctx);
  if (ctx.finished) {
    if (ctx.error) std::rethrow_exception(ctx.error);
    record_finalize_event(ctx);
    ctx.state = RankState::kDone;
    return;
  }
  ANACIN_CHECK(ctx.has_pending_call,
               "rank " << ctx.rank << " yielded without a pending call");
  ctx.has_pending_call = false;
  ++processed_calls_;
  if (processed_calls_ > config_.max_calls) {
    throw Error("simulation exceeded max_calls (" +
                std::to_string(config_.max_calls) +
                "); the program may not terminate");
  }
  process_call(ctx, *ctx.call);
}

void Engine::process_call(RankCtx& ctx, Call& call) {
  switch (call.kind) {
    case CallKind::kCompute: {
      ANACIN_CHECK(call.compute_us >= 0.0, "compute time must be >= 0");
      double compute_us = call.compute_us;
      if (faults_.enabled() && compute_us > 0.0) {
        const double multiplier = faults_.compute_multiplier(ctx.rank);
        if (multiplier > 1.0) {
          compute_us *= multiplier;
          if (!ctx.straggler_event_recorded) {
            ctx.straggler_event_recorded = true;
            ++stats_.straggler_events;
            record_fault_event(ctx, -1, -1, 0, "FAULT_straggler");
          }
        }
      }
      ctx.clock += compute_us;
      ctx.call_done = true;
      return;
    }
    case CallKind::kSend: do_send(ctx, call); return;
    case CallKind::kRecv: do_recv(ctx, call); return;
    case CallKind::kIrecv: do_irecv(ctx, call); return;
    case CallKind::kWait: do_wait(ctx, call); return;
    case CallKind::kWaitAny: do_wait_any(ctx, call); return;
    case CallKind::kWaitAll: do_wait_all(ctx, call); return;
    case CallKind::kProbe: do_probe(ctx, call); return;
    case CallKind::kIprobe: do_iprobe(ctx, call); return;
  }
  throw Error("unhandled call kind");
}

void Engine::do_send(RankCtx& ctx, Call& call) {
  if (call.peer < 0 || call.peer >= config_.num_ranks) {
    throw SimUsageError("rank " + std::to_string(ctx.rank) +
                        " sends to out-of-range rank " +
                        std::to_string(call.peer));
  }
  if (call.tag < 0 || call.tag >= kCollectiveTagBase * 2) {
    throw SimUsageError("invalid tag " + std::to_string(call.tag));
  }
  const auto size = std::max<std::uint32_t>(
      static_cast<std::uint32_t>(call.payload.size()), call.size_hint);

  const char* mpi_name = "MPI_Send";
  switch (call.send_mode) {
    case SendMode::kBuffered: mpi_name = "MPI_Send"; break;
    case SendMode::kSync: mpi_name = "MPI_Ssend"; break;
    case SendMode::kNonblocking: mpi_name = "MPI_Isend"; break;
    case SendMode::kNonblockingSync: mpi_name = "MPI_Issend"; break;
  }
  trace::Event event;
  event.type = trace::EventType::kSend;
  event.rank = ctx.rank;
  event.peer = call.peer;
  event.tag = call.tag;
  event.size_bytes = size;
  event.callstack_id = callstack_id(ctx, mpi_name);

  const NetworkModel::Delay delay = network_.sample(ctx.rank, call.peer, size);
  event.jittered = delay.jittered;
  event.t_start = ctx.clock;
  ctx.clock += config_.network.send_overhead_us;
  event.t_end = ctx.clock;
  const std::int64_t seq = trace_.append(event);

  double delay_us = delay.delay_us;
  FaultModel::MessageFate fate;
  if (faults_.enabled()) {
    delay_us *= faults_.latency_multiplier(ctx.rank, call.peer);
    fate = faults_.sample_message(ctx.rank, call.peer);
    // One fault event per dropped attempt, right after the send event
    // (same clock): the transport retransmits asynchronously, the sender
    // does not stall, but the retry latency is visible in the delivery
    // time and the drops are visible in the event graph.
    for (int drop = 0; drop < fate.dropped_attempts; ++drop) {
      record_fault_event(ctx, call.peer, call.tag, size, "FAULT_retransmit");
    }
    stats_.drops += static_cast<std::uint64_t>(fate.dropped_attempts);
    stats_.retries += static_cast<std::uint64_t>(fate.dropped_attempts);
  }

  double deliver = ctx.clock +
                   static_cast<double>(fate.dropped_attempts) *
                       config_.faults.retry_timeout_us +
                   delay_us;
  const std::uint64_t channel =
      static_cast<std::uint64_t>(ctx.rank) *
          static_cast<std::uint64_t>(config_.num_ranks) +
      static_cast<std::uint64_t>(call.peer);
  double& last = channel_last_delivery_[channel];
  deliver = std::max(deliver, last + kChannelFifoEpsilon);
  last = deliver;

  ++stats_.messages;
  if (delay.jittered) ++stats_.jittered_messages;

  std::uint64_t sync_request = 0;
  if (call.send_mode == SendMode::kSync ||
      call.send_mode == SendMode::kNonblockingSync) {
    sync_request = ctx.next_request++;
    RequestState request;
    request.sync_send = true;
    request.post_time = ctx.clock;
    ctx.requests.emplace(sync_request, std::move(request));
  }

  TransitMsg transit;
  transit.dst = call.peer;
  transit.msg =
      ArrivedMsg{ctx.rank,         call.tag, std::move(call.payload),
                 seq,              size,     deliver,
                 delay.jittered,   ++order_counter_,
                 sync_request};
  push_transit(std::move(transit));

  if (fate.duplicated) {
    // A spurious copy trails the original. It bypasses the channel-FIFO
    // bookkeeping (it is a network artifact, never matched, so it cannot
    // overtake anything observable) and carries no payload.
    TransitMsg duplicate;
    duplicate.dst = call.peer;
    duplicate.msg = ArrivedMsg{
        ctx.rank,
        call.tag,
        Payload{},
        seq,
        size,
        deliver + std::max(kChannelFifoEpsilon, fate.duplicate_extra_delay_us),
        delay.jittered,
        ++order_counter_,
        /*sync_send_request=*/0,
        /*duplicate=*/true};
    push_transit(std::move(duplicate));
  }

  switch (call.send_mode) {
    case SendMode::kBuffered:
      ctx.call_done = true;
      return;
    case SendMode::kNonblocking: {
      const std::uint64_t id = ctx.next_request++;
      RequestState request;
      request.post_time = ctx.clock;
      request.complete = true;
      request.complete_time = ctx.clock;
      request.completion_order = ++completion_counter_;
      ctx.requests.emplace(id, std::move(request));
      call.out_request = id;
      ctx.call_done = true;
      return;
    }
    case SendMode::kSync:
      call.request_ids = {sync_request};
      ctx.block_kind = BlockKind::kSyncSend;
      ctx.state = RankState::kBlocked;
      return;
    case SendMode::kNonblockingSync:
      call.out_request = sync_request;
      ctx.call_done = true;
      return;
  }
}

const Engine::ArrivedMsg* Engine::find_unexpected(const RankCtx& ctx,
                                                  int src_filter,
                                                  int tag_filter) const {
  for (const ArrivedMsg& msg : ctx.unexpected) {
    if (filters_match(src_filter, tag_filter, msg)) return &msg;
  }
  return nullptr;
}

void Engine::do_probe(RankCtx& ctx, Call& call) {
  if (const ArrivedMsg* msg =
          find_unexpected(ctx, call.src_filter, call.tag_filter)) {
    call.out_probe = ProbeResult{msg->src, msg->tag, msg->size};
    ctx.call_done = true;
    return;
  }
  ctx.block_kind = BlockKind::kProbe;
  ctx.state = RankState::kBlocked;
}

void Engine::do_iprobe(RankCtx& ctx, Call& call) {
  const ArrivedMsg* msg =
      find_unexpected(ctx, call.src_filter, call.tag_filter);
  call.out_flag = msg != nullptr;
  if (msg != nullptr) {
    call.out_probe = ProbeResult{msg->src, msg->tag, msg->size};
  }
  // An iprobe poll costs a little virtual time, so poll loops make
  // progress relative to in-flight messages instead of spinning at a
  // frozen clock.
  ctx.clock += config_.network.recv_overhead_us;
  ctx.call_done = true;
}

std::uint64_t Engine::new_recv_request(RankCtx& ctx, int src_filter,
                                       int tag_filter,
                                       std::uint32_t callstack) {
  if (src_filter != kAnySource &&
      (src_filter < 0 || src_filter >= config_.num_ranks)) {
    throw SimUsageError("receive from out-of-range rank " +
                        std::to_string(src_filter));
  }
  const std::uint64_t id = ctx.next_request++;
  RequestState request;
  request.is_recv = true;
  request.src_filter = src_filter;
  request.tag_filter = tag_filter;
  request.post_time = ctx.clock;
  request.callstack_id = callstack;
  ctx.requests.emplace(id, std::move(request));
  return id;
}

bool Engine::filters_match(int src_filter, int tag_filter,
                           const ArrivedMsg& msg) const {
  if (src_filter != kAnySource && src_filter != msg.src) return false;
  if (tag_filter == kAnyTag) {
    // Collective traffic lives in its own context (as in MPI): wildcard-tag
    // user receives never match internal collective messages; those are
    // matched only by their explicit collective tag.
    return msg.tag < kCollectiveTagBase;
  }
  return tag_filter == msg.tag;
}

bool Engine::match_allowed(const RankCtx& ctx, int src_filter,
                           const ArrivedMsg& msg) const {
  if (src_filter != kAnySource) return true;
  if (replay_ == nullptr) return true;
  if (ctx.rank >= static_cast<int>(replay_->wildcard_matches.size())) {
    return true;
  }
  const auto& schedule =
      replay_->wildcard_matches[static_cast<std::size_t>(ctx.rank)];
  if (ctx.replay_cursor >= schedule.size()) return true;
  const ReplaySchedule::Match& forced = schedule[ctx.replay_cursor];
  if (!forced.pinned) return true;
  // With earlier entries freed, a racing completion (or an explicit-source
  // receive) can consume the forced message before this entry's turn;
  // insisting on it would deadlock. Fall back to free matching.
  if (ctx.consumed_matches.count({forced.source, forced.send_seq}) != 0) {
    return true;
  }
  return forced.source == msg.src && forced.send_seq == msg.src_seq;
}

bool Engine::try_match_unexpected(RankCtx& ctx, std::uint64_t request_id) {
  RequestState& request = request_state(ctx, request_id);
  for (auto it = ctx.unexpected.begin(); it != ctx.unexpected.end(); ++it) {
    if (filters_match(request.src_filter, request.tag_filter, *it) &&
        match_allowed(ctx, request.src_filter, *it)) {
      const double match_time = std::max(it->deliver_time, request.post_time);
      ArrivedMsg msg = std::move(*it);
      ctx.unexpected.erase(it);
      complete_recv_request(ctx, request_id, std::move(msg), match_time);
      return true;
    }
  }
  return false;
}

void Engine::complete_recv_request(RankCtx& ctx, std::uint64_t request_id,
                                   ArrivedMsg msg, double match_time) {
  RequestState& request = request_state(ctx, request_id);
  if (replay_ != nullptr && request.src_filter == kAnySource) {
    // A freed cursor entry races naturally: it neither honours nor advances
    // the floor, so an all-freed replay is byte-identical to an
    // unconstrained run with the same seed.
    bool freed = false;
    if (ctx.rank < static_cast<int>(replay_->wildcard_matches.size())) {
      const auto& schedule =
          replay_->wildcard_matches[static_cast<std::size_t>(ctx.rank)];
      freed = ctx.replay_cursor < schedule.size() &&
              !schedule[ctx.replay_cursor].pinned;
    }
    if (!freed) {
      match_time = std::max(match_time, ctx.replay_time_floor);
      ctx.replay_time_floor = match_time;
    }
  }
  if (replay_ != nullptr) {
    ctx.consumed_matches.insert({msg.src, msg.src_seq});
  }
  request.complete = true;
  request.complete_time = match_time;
  request.completion_order = ++completion_counter_;
  ++matched_messages_;
  request.matched_rank = msg.src;
  request.matched_seq = msg.src_seq;
  request.jittered = msg.jittered;
  request.size = msg.size;

  const std::uint64_t sync_request = msg.sync_send_request;
  const int sender = msg.src;
  request.result =
      RecvResult{msg.src, msg.tag, std::move(msg.payload), match_time};

  if (request.src_filter == kAnySource) {
    ++stats_.wildcard_recvs;
    if (replay_ != nullptr &&
        ctx.rank < static_cast<int>(replay_->wildcard_matches.size()) &&
        ctx.replay_cursor <
            replay_->wildcard_matches[static_cast<std::size_t>(ctx.rank)]
                .size()) {
      ++ctx.replay_cursor;
    }
  }
  if (sync_request != 0) {
    complete_sync_send(sync_request, sender, match_time);
  }
  // Any completion under replay can unblock a queued pairing: a cursor
  // advance makes the next forced message matchable, and consuming a forced
  // message flips its pinned entry into free-match fallback.
  if (replay_ != nullptr) drain_replay_matches(ctx);
}

void Engine::drain_replay_matches(RankCtx& ctx) {
  if (ctx.draining_replay) return;  // outermost drain handles everything
  ctx.draining_replay = true;
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto pit = ctx.posted.begin(); !progress && pit != ctx.posted.end();
         ++pit) {
      for (auto uit = ctx.unexpected.begin(); uit != ctx.unexpected.end();
           ++uit) {
        if (!filters_match(pit->src_filter, pit->tag_filter, *uit) ||
            !match_allowed(ctx, pit->src_filter, *uit)) {
          continue;
        }
        const std::uint64_t request_id = pit->request_id;
        ctx.posted.erase(pit);
        const double match_time =
            std::max(uit->deliver_time,
                     request_state(ctx, request_id).post_time);
        ArrivedMsg msg = std::move(*uit);
        ctx.unexpected.erase(uit);
        complete_recv_request(ctx, request_id, std::move(msg), match_time);
        progress = true;
        break;
      }
    }
  }
  ctx.draining_replay = false;
}

void Engine::complete_sync_send(std::uint64_t request_id, int sender_rank,
                                double match_time) {
  RankCtx& sender = *ranks_[static_cast<std::size_t>(sender_rank)];
  RequestState& request = request_state(sender, request_id);
  request.complete = true;
  request.complete_time = match_time;
  request.completion_order = ++completion_counter_;
  maybe_unblock(sender);
}

void Engine::do_recv(RankCtx& ctx, Call& call) {
  const std::uint32_t cs = callstack_id(ctx, "MPI_Recv");
  const std::uint64_t id =
      new_recv_request(ctx, call.src_filter, call.tag_filter, cs);
  call.request_ids = {id};
  if (try_match_unexpected(ctx, id)) {
    finish_recv_like(ctx, call, id, /*record_event_flag=*/true);
    return;
  }
  ctx.posted.push_back(PostedRecv{id, call.src_filter, call.tag_filter});
  ctx.block_kind = BlockKind::kRecv;
  ctx.state = RankState::kBlocked;
}

void Engine::do_irecv(RankCtx& ctx, Call& call) {
  const std::uint32_t cs = callstack_id(ctx, "MPI_Irecv");
  const std::uint64_t id =
      new_recv_request(ctx, call.src_filter, call.tag_filter, cs);
  if (!try_match_unexpected(ctx, id)) {
    ctx.posted.push_back(PostedRecv{id, call.src_filter, call.tag_filter});
  }
  call.out_request = id;
  ctx.call_done = true;
}

Engine::RequestState& Engine::request_state(RankCtx& ctx,
                                            std::uint64_t request_id) {
  const auto it = ctx.requests.find(request_id);
  if (it == ctx.requests.end()) {
    throw SimUsageError("rank " + std::to_string(ctx.rank) +
                        " used an invalid or already-retired request");
  }
  return it->second;
}

void Engine::finish_recv_like(RankCtx& ctx, Call& call,
                              std::uint64_t request_id,
                              bool record_event_flag) {
  RequestState& request = request_state(ctx, request_id);
  ANACIN_CHECK(request.complete, "finishing an incomplete request");
  if (request.is_recv) {
    ctx.clock = std::max(ctx.clock, request.complete_time) +
                config_.network.recv_overhead_us;
    if (record_event_flag) record_recv_event(ctx, request);
    call.out_recv = std::move(request.result);
  } else {
    ctx.clock = std::max(ctx.clock, request.complete_time);
  }
  ctx.requests.erase(request_id);
  ctx.block_kind = BlockKind::kNone;
  ctx.state = RankState::kReady;
  ctx.call_done = true;
}

void Engine::do_wait(RankCtx& ctx, Call& call) {
  const std::uint64_t id = call.request_ids.at(0);
  RequestState& request = request_state(ctx, id);
  if (request.complete) {
    finish_recv_like(ctx, call, id, true);
    return;
  }
  ctx.block_kind = BlockKind::kWaitOne;
  ctx.state = RankState::kBlocked;
}

void Engine::do_wait_any(RankCtx& ctx, Call& call) {
  ANACIN_CHECK(!call.request_ids.empty(), "wait_any on empty request set");
  std::size_t best = call.request_ids.size();
  for (std::size_t i = 0; i < call.request_ids.size(); ++i) {
    const RequestState& request = request_state(ctx, call.request_ids[i]);
    if (!request.complete) continue;
    if (best == call.request_ids.size()) {
      best = i;
      continue;
    }
    const RequestState& current = request_state(ctx, call.request_ids[best]);
    if (request.complete_time < current.complete_time ||
        (request.complete_time == current.complete_time &&
         request.completion_order < current.completion_order)) {
      best = i;
    }
  }
  if (best == call.request_ids.size()) {
    ctx.block_kind = BlockKind::kWaitAny;
    ctx.state = RankState::kBlocked;
    return;
  }
  call.out_index = best;
  finish_recv_like(ctx, call, call.request_ids[best], true);
}

void Engine::do_wait_all(RankCtx& ctx, Call& call) {
  for (const std::uint64_t id : call.request_ids) {
    if (!request_state(ctx, id).complete) {
      ctx.block_kind = BlockKind::kWaitAll;
      ctx.state = RankState::kBlocked;
      return;
    }
  }
  // All complete: retire in completion order so recv events appear in the
  // order the messages actually arrived.
  std::vector<std::size_t> indices(call.request_ids.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  std::sort(indices.begin(), indices.end(),
            [&](std::size_t a, std::size_t b) {
              const RequestState& ra = request_state(ctx, call.request_ids[a]);
              const RequestState& rb = request_state(ctx, call.request_ids[b]);
              if (ra.complete_time != rb.complete_time) {
                return ra.complete_time < rb.complete_time;
              }
              return ra.completion_order < rb.completion_order;
            });
  call.out_recv_all.resize(call.request_ids.size());
  for (const std::size_t i : indices) {
    RequestState& request = request_state(ctx, call.request_ids[i]);
    if (request.is_recv) {
      ctx.clock = std::max(ctx.clock, request.complete_time) +
                  config_.network.recv_overhead_us;
      record_recv_event(ctx, request);
      call.out_recv_all[i] = std::move(request.result);
    } else {
      ctx.clock = std::max(ctx.clock, request.complete_time);
    }
    ctx.requests.erase(call.request_ids[i]);
  }
  ctx.block_kind = BlockKind::kNone;
  ctx.state = RankState::kReady;
  ctx.call_done = true;
}

void Engine::maybe_unblock(RankCtx& ctx) {
  if (ctx.state != RankState::kBlocked) return;
  Call& call = *ctx.call;
  switch (ctx.block_kind) {
    case BlockKind::kRecv:
    case BlockKind::kWaitOne: {
      const std::uint64_t id = call.request_ids.at(0);
      if (request_state(ctx, id).complete) {
        finish_recv_like(ctx, call, id, true);
      }
      return;
    }
    case BlockKind::kWaitAny: do_wait_any(ctx, call); return;
    case BlockKind::kWaitAll: do_wait_all(ctx, call); return;
    case BlockKind::kSyncSend: {
      const std::uint64_t id = call.request_ids.at(0);
      RequestState& request = request_state(ctx, id);
      if (request.complete) {
        ctx.clock = std::max(ctx.clock, request.complete_time);
        ctx.requests.erase(id);
        ctx.block_kind = BlockKind::kNone;
        ctx.state = RankState::kReady;
        ctx.call_done = true;
      }
      return;
    }
    case BlockKind::kProbe: {
      for (const ArrivedMsg& msg : ctx.unexpected) {
        if (!filters_match(call.src_filter, call.tag_filter, msg)) continue;
        call.out_probe = ProbeResult{msg.src, msg.tag, msg.size};
        ctx.clock = std::max(ctx.clock, msg.deliver_time) +
                    config_.network.recv_overhead_us;
        ctx.block_kind = BlockKind::kNone;
        ctx.state = RankState::kReady;
        ctx.call_done = true;
        return;
      }
      return;
    }
    case BlockKind::kNone: return;
  }
}

void Engine::process_delivery() {
  TransitMsg transit = pop_transit();
  RankCtx& ctx = *ranks_[static_cast<std::size_t>(transit.dst)];
  ArrivedMsg& msg = transit.msg;

  if (msg.duplicate) {
    // The receiver recognizes the repeated (source, sequence) pair,
    // records the fault, and drops the copy before matching: duplicates
    // never complete a receive or perturb the unexpected queue.
    ++stats_.duplicates;
    record_fault_event(ctx, msg.src, msg.tag, msg.size, "FAULT_duplicate");
    return;
  }

  for (auto it = ctx.posted.begin(); it != ctx.posted.end(); ++it) {
    if (filters_match(it->src_filter, it->tag_filter, msg) &&
        match_allowed(ctx, it->src_filter, msg)) {
      const std::uint64_t request_id = it->request_id;
      ctx.posted.erase(it);
      const double match_time =
          std::max(msg.deliver_time,
                   request_state(ctx, request_id).post_time);
      complete_recv_request(ctx, request_id, std::move(msg), match_time);
      maybe_unblock(ctx);
      return;
    }
  }
  ctx.unexpected.push_back(std::move(msg));
  max_unexpected_depth_ =
      std::max(max_unexpected_depth_,
               static_cast<std::uint64_t>(ctx.unexpected.size()));
  // A message parked in the unexpected queue can satisfy a blocked probe.
  maybe_unblock(ctx);
}

// --------------------------------------------------------------------------
// Events & diagnostics
// --------------------------------------------------------------------------

std::uint32_t Engine::callstack_id(RankCtx& ctx,
                                   std::string_view mpi_function) {
  std::string path = trace::join_frames(ctx.frames);
  if (!path.empty()) path += '>';
  path += mpi_function;
  return trace_.callstacks().intern(path);
}

void Engine::record_recv_event(RankCtx& ctx, const RequestState& request) {
  trace::Event event;
  event.type = trace::EventType::kRecv;
  event.rank = ctx.rank;
  event.peer = request.matched_rank;
  event.tag = request.result.tag;
  event.size_bytes = request.size;
  event.t_start = request.post_time;
  event.t_end = ctx.clock;
  event.matched_rank = request.matched_rank;
  event.matched_seq = request.matched_seq;
  event.posted_source = request.src_filter;
  event.posted_tag = request.tag_filter;
  event.match_order = static_cast<std::int64_t>(request.completion_order);
  event.callstack_id = request.callstack_id;
  event.jittered = request.jittered;
  trace_.append(event);
}

void Engine::record_fault_event(RankCtx& ctx, int peer, int tag,
                                std::uint32_t size_bytes,
                                std::string_view cause) {
  trace::Event event;
  event.type = trace::EventType::kFault;
  event.rank = ctx.rank;
  event.peer = peer;
  event.tag = tag;
  event.size_bytes = size_bytes;
  // Faults are runtime artifacts, not program steps: they take no virtual
  // time and are stamped at the rank's current clock, which keeps the
  // per-rank t_end ordering invariant intact.
  event.t_start = ctx.clock;
  event.t_end = ctx.clock;
  event.callstack_id = trace_.callstacks().intern(std::string(cause));
  trace_.append(event);
}

void Engine::record_init_events() {
  const std::uint32_t cs = trace_.callstacks().intern("MPI_Init");
  for (int r = 0; r < config_.num_ranks; ++r) {
    trace::Event event;
    event.type = trace::EventType::kInit;
    event.rank = r;
    event.callstack_id = cs;
    trace_.append(event);
  }
}

void Engine::record_finalize_event(RankCtx& ctx) {
  trace::Event event;
  event.type = trace::EventType::kFinalize;
  event.rank = ctx.rank;
  event.t_start = ctx.clock;
  event.t_end = ctx.clock;
  event.callstack_id = trace_.callstacks().intern("MPI_Finalize");
  trace_.append(event);
}

void Engine::throw_deadlock() {
  std::ostringstream os;
  os << "deadlock: no rank can make progress and no messages are in flight\n";
  for (const auto& ctx : ranks_) {
    if (ctx->state != RankState::kBlocked) continue;
    os << "  rank " << ctx->rank << ": blocked in ";
    switch (ctx->block_kind) {
      case BlockKind::kRecv: {
        const Call& call = *ctx->call;
        os << "recv(source="
           << (call.src_filter == kAnySource ? std::string("ANY")
                                             : std::to_string(call.src_filter))
           << ", tag="
           << (call.tag_filter == kAnyTag ? std::string("ANY")
                                          : std::to_string(call.tag_filter))
           << ")";
        break;
      }
      case BlockKind::kWaitOne: os << "wait"; break;
      case BlockKind::kWaitAny: os << "wait_any"; break;
      case BlockKind::kWaitAll: os << "wait_all"; break;
      case BlockKind::kSyncSend: os << "ssend (no matching receive)"; break;
      case BlockKind::kProbe: os << "probe (no matching message)"; break;
      case BlockKind::kNone: os << "?"; break;
    }
    os << "; " << ctx->unexpected.size() << " unexpected message(s) queued";
    if (replay_ != nullptr) {
      os << "; replay cursor " << ctx->replay_cursor;
    }
    os << '\n';
  }
  throw DeadlockError(os.str());
}

// --------------------------------------------------------------------------
// Transit heap
// --------------------------------------------------------------------------

void Engine::push_transit(TransitMsg msg) {
  transit_.push_back(std::move(msg));
  std::push_heap(transit_.begin(), transit_.end(),
                 [](const TransitMsg& a, const TransitMsg& b) {
                   if (a.msg.deliver_time != b.msg.deliver_time) {
                     return a.msg.deliver_time > b.msg.deliver_time;
                   }
                   return a.msg.order > b.msg.order;
                 });
}

Engine::TransitMsg Engine::pop_transit() {
  ANACIN_CHECK(!transit_.empty(), "pop from empty transit heap");
  std::pop_heap(transit_.begin(), transit_.end(),
                [](const TransitMsg& a, const TransitMsg& b) {
                  if (a.msg.deliver_time != b.msg.deliver_time) {
                    return a.msg.deliver_time > b.msg.deliver_time;
                  }
                  return a.msg.order > b.msg.order;
                });
  TransitMsg msg = std::move(transit_.back());
  transit_.pop_back();
  return msg;
}

}  // namespace anacin::sim

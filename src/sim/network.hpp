#pragma once

#include <cstdint>

#include "sim/config.hpp"
#include "support/rng.hpp"

namespace anacin::sim {

/// Samples per-message delivery delays according to the NetworkConfig.
///
/// The model is LogP-flavoured: a fixed base latency (intra- or inter-node),
/// a bandwidth term proportional to message size, and — with probability
/// `nd_fraction` — an exponentially distributed congestion delay. The
/// exponential tail is what makes message races resolve differently across
/// runs; its mean is larger for inter-node links.
class NetworkModel {
public:
  NetworkModel(const NetworkConfig& config, const SimConfig& sim_config,
               Rng rng);

  struct Delay {
    double delay_us = 0.0;
    bool jittered = false;
  };

  /// Sample the network transit delay for one message.
  Delay sample(int src_rank, int dst_rank, std::uint32_t size_bytes);

  int node_of(int rank) const;
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

private:
  NetworkConfig config_;
  int num_ranks_;
  int ranks_per_node_;
  Rng rng_;
};

}  // namespace anacin::sim

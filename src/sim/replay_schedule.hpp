#pragma once

#include <cstdint>
#include <vector>

namespace anacin::sim {

/// Recorded matching decisions for wildcard receives, in per-rank
/// completion order.
///
/// This is the minimal information a record-and-replay tool (ReMPI-style)
/// needs to suppress message-race non-determinism: receives with an
/// explicit source are already deterministic under FIFO channels, so only
/// `MPI_ANY_SOURCE` matches are recorded. During replay the engine only
/// lets a wildcard receive match the message named by the next recorded
/// entry; all other candidate messages wait in the unexpected queue.
///
/// Each entry can individually be *pinned* (the default: the engine forces
/// the recorded outcome) or *freed* (the engine lets that wildcard
/// completion race naturally and only advances the cursor past the entry).
/// Selectively freeing entries is the substrate for delta-debugging
/// bisection (replay/bisect.hpp): a replay with every entry freed behaves
/// exactly like an unconstrained run, a replay with every entry pinned is
/// byte-identical to the recording, and mixtures isolate which recorded
/// races actually drive the kernel-distance gap.
struct ReplaySchedule {
  struct Match {
    /// Rank that sent the matched message.
    std::int32_t source = -1;
    /// Program-order event seq of the matching send on `source`.
    std::int64_t send_seq = -1;
    /// When false the engine skips forcing this entry: the wildcard
    /// completion at this cursor position matches freely.
    bool pinned = true;

    friend bool operator==(const Match&, const Match&) = default;
  };

  /// wildcard_matches[rank] lists that rank's wildcard receive completions
  /// in the order they completed during the recorded run.
  std::vector<std::vector<Match>> wildcard_matches;

  bool empty() const {
    for (const auto& per_rank : wildcard_matches) {
      if (!per_rank.empty()) return false;
    }
    return true;
  }

  std::size_t total_matches() const {
    std::size_t total = 0;
    for (const auto& per_rank : wildcard_matches) total += per_rank.size();
    return total;
  }

  /// Free (pinned = false) the entry at `index`, counting entries in flat
  /// rank-major order (all of rank 0's entries first, then rank 1's, ...).
  /// Returns false when the index is out of range.
  bool free_entry(std::size_t index) {
    for (auto& per_rank : wildcard_matches) {
      if (index < per_rank.size()) {
        per_rank[index].pinned = false;
        return true;
      }
      index -= per_rank.size();
    }
    return false;
  }
};

}  // namespace anacin::sim

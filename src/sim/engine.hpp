#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/config.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"
#include "sim/replay_schedule.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"
#include "trace/trace.hpp"

namespace anacin::sim {

class Comm;

/// A simulated MPI program: one function body executed by every rank
/// (SPMD), branching on `comm.rank()` exactly like a real MPI application.
using RankProgram = std::function<void(Comm&)>;

struct RunStats {
  std::uint64_t messages = 0;
  std::uint64_t jittered_messages = 0;
  std::uint64_t wildcard_recvs = 0;
  std::uint64_t calls = 0;
  /// Receives completed by matching a message (posted or unexpected).
  std::uint64_t matched_messages = 0;
  /// High-water mark of any rank's unexpected-message queue.
  std::uint64_t max_unexpected_depth = 0;
  /// Fault injection (see sim/faults.hpp): transmission attempts dropped,
  /// retransmissions issued (equal under the bounded-retry model),
  /// duplicate deliveries discarded, and ranks that stretched a compute
  /// phase as stragglers / slow-node residents.
  std::uint64_t drops = 0;
  std::uint64_t retries = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t straggler_events = 0;
  double makespan_us = 0.0;
};

/// Outcome of one simulated execution.
struct RunResult {
  trace::Trace trace;
  RunStats stats;
};

/// Deterministic discrete-event engine executing a RankProgram on
/// `config.num_ranks` simulated MPI processes.
///
/// Concurrency model: each rank runs on its own std::thread, but a single
/// token is passed between the engine and exactly one rank at a time, so
/// execution is sequential and fully deterministic. The engine always
/// advances the entity with the smallest virtual timestamp — either a rank
/// that is ready to execute its next program step, or the in-flight message
/// with the earliest delivery time. Ties break on a monotonically increasing
/// sequence number.
///
/// Non-determinism across runs therefore comes from one place only: the
/// seeded NetworkModel jitter, i.e. the paper's "percentage of
/// non-determinism" knob. Identical (program, SimConfig) pairs produce
/// bit-identical traces.
///
/// Message matching follows the MPI standard: per-(source, destination)
/// channels are FIFO (no overtaking), receives match posted-order first and
/// unexpected-arrival-order second, and `kAnySource` receives race between
/// channels — the root source of communication non-determinism.
class Engine {
public:
  Engine(SimConfig config, RankProgram program);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Execute the program to completion. Callable exactly once.
  RunResult run();

  int num_ranks() const { return config_.num_ranks; }
  int num_nodes() const { return config_.num_nodes; }
  int node_of(int rank) const { return config_.node_of(rank); }

private:
  friend class Comm;

  enum class CallKind : std::uint8_t {
    kCompute,
    kSend,
    kRecv,
    kIrecv,
    kWait,
    kWaitAny,
    kWaitAll,
    kProbe,
    kIprobe,
  };

  enum class SendMode : std::uint8_t {
    kBuffered,
    kSync,
    kNonblocking,
    kNonblockingSync,
  };

  /// One MPI call crossing from a rank thread into the engine. Lives on the
  /// rank thread's stack; the engine accesses it only while the rank is
  /// parked, with ordering established by the token mutex.
  struct Call {
    CallKind kind = CallKind::kCompute;
    // send parameters
    SendMode send_mode = SendMode::kBuffered;
    int peer = -1;
    int tag = 0;
    Payload payload;
    std::uint32_t size_hint = 0;
    // recv parameters
    int src_filter = kAnySource;
    int tag_filter = kAnyTag;
    double compute_us = 0.0;
    // wait parameters
    std::vector<std::uint64_t> request_ids;
    // outputs
    std::uint64_t out_request = 0;
    RecvResult out_recv;
    std::size_t out_index = 0;
    std::vector<RecvResult> out_recv_all;
    bool out_flag = false;        // iprobe: message available
    ProbeResult out_probe;        // probe/iprobe result
  };

  enum class RankState : std::uint8_t { kReady, kBlocked, kDone };
  enum class BlockKind : std::uint8_t {
    kNone,
    kRecv,
    kWaitOne,
    kWaitAny,
    kWaitAll,
    kSyncSend,
    kProbe,
  };

  struct PostedRecv {
    std::uint64_t request_id = 0;
    int src_filter = kAnySource;
    int tag_filter = kAnyTag;
  };

  struct ArrivedMsg {
    int src = -1;
    int tag = 0;
    Payload payload;
    std::int64_t src_seq = -1;
    std::uint32_t size = 0;
    double deliver_time = 0.0;
    bool jittered = false;
    std::uint64_t order = 0;
    /// Sender-side request id for synchronous sends (0 otherwise).
    std::uint64_t sync_send_request = 0;
    /// Spurious duplicate injected by the fault model; detected at the
    /// receiver (by sequence number) and discarded, never matched.
    bool duplicate = false;
  };

  struct TransitMsg {
    int dst = -1;
    ArrivedMsg msg;
  };

  struct RequestState {
    bool is_recv = false;
    bool sync_send = false;
    bool complete = false;
    double post_time = 0.0;
    double complete_time = 0.0;
    std::uint64_t completion_order = 0;
    int src_filter = kAnySource;
    int tag_filter = kAnyTag;
    std::uint32_t callstack_id = 0;
    RecvResult result;
    int matched_rank = -1;
    std::int64_t matched_seq = -1;
    bool jittered = false;
    std::uint32_t size = 0;
  };

  struct RankCtx {
    int rank = -1;
    std::thread thread;
    RankState state = RankState::kReady;
    double clock = 0.0;
    /// Pending/in-progress call, owned by the rank thread's stack.
    Call* call = nullptr;
    bool has_pending_call = false;
    bool call_done = false;
    bool started = false;
    bool finished = false;
    bool aborted = false;
    std::exception_ptr error;
    BlockKind block_kind = BlockKind::kNone;
    std::deque<PostedRecv> posted;
    std::deque<ArrivedMsg> unexpected;
    std::unordered_map<std::uint64_t, RequestState> requests;
    std::uint64_t next_request = 1;
    std::vector<std::string> frames;
    std::size_t replay_cursor = 0;
    bool draining_replay = false;
    /// Under replay, wildcard completions are delivered in schedule order:
    /// a message matched out of its arrival order completes no earlier than
    /// its predecessors in the schedule (the replay tool "holds" it).
    /// Freed schedule entries (Match::pinned == false) neither honour nor
    /// advance the floor, so an all-freed replay matches an unconstrained
    /// run byte for byte.
    double replay_time_floor = 0.0;
    /// (source, send_seq) pairs already matched by *some* receive on this
    /// rank during replay. With part of the schedule freed, a racing freed
    /// completion or an explicit-source receive can consume the message a
    /// later pinned entry forces; that entry then falls back to free
    /// matching instead of deadlocking the candidate replay.
    std::set<std::pair<std::int32_t, std::int64_t>> consumed_matches;
    /// One straggler fault event is recorded per affected rank per run,
    /// on its first stretched compute phase.
    bool straggler_event_recorded = false;
    Rng rng;
  };

  struct AbortSignal {};

  // --- entry points used by Comm (called on rank threads) ---
  void rank_call(int rank, Call& call);
  void push_frame(int rank, std::string frame);
  void pop_frame(int rank);
  Rng& rank_rng(int rank);

  // --- token passing ---
  void resume_rank(RankCtx& ctx);
  void yield_to_engine(int rank);
  void wait_for_token_initial(int rank);
  void finish_rank_handshake(RankCtx& ctx);
  void abort_all_ranks();

  // --- engine mechanics (engine thread only) ---
  void rank_thread_main(RankCtx& ctx);
  void main_loop();
  void step_rank(RankCtx& ctx);
  void process_call(RankCtx& ctx, Call& call);
  void process_delivery();
  void do_send(RankCtx& ctx, Call& call);
  void do_recv(RankCtx& ctx, Call& call);
  void do_irecv(RankCtx& ctx, Call& call);
  void do_wait(RankCtx& ctx, Call& call);
  void do_wait_any(RankCtx& ctx, Call& call);
  void do_wait_all(RankCtx& ctx, Call& call);
  void do_probe(RankCtx& ctx, Call& call);
  void do_iprobe(RankCtx& ctx, Call& call);
  /// First unexpected message matching the filters, or nullptr.
  const ArrivedMsg* find_unexpected(const RankCtx& ctx, int src_filter,
                                    int tag_filter) const;

  std::uint64_t new_recv_request(RankCtx& ctx, int src_filter, int tag_filter,
                                 std::uint32_t callstack_id);
  bool match_allowed(const RankCtx& ctx, int src_filter,
                     const ArrivedMsg& msg) const;
  bool filters_match(int src_filter, int tag_filter,
                     const ArrivedMsg& msg) const;
  /// Try to satisfy a just-posted receive from the unexpected queue.
  bool try_match_unexpected(RankCtx& ctx, std::uint64_t request_id);
  /// After a replay-cursor advance, posted wildcard receives may newly
  /// match queued unexpected messages; drain all such pairs.
  void drain_replay_matches(RankCtx& ctx);
  void complete_recv_request(RankCtx& ctx, std::uint64_t request_id,
                             ArrivedMsg msg, double match_time);
  void complete_sync_send(std::uint64_t request_id, int sender_rank,
                          double match_time);
  void maybe_unblock(RankCtx& ctx);

  void finish_recv_like(RankCtx& ctx, Call& call, std::uint64_t request_id,
                        bool record_event_flag);
  void record_recv_event(RankCtx& ctx, const RequestState& request);
  /// Append a kFault event on `ctx` at its current clock. `cause` becomes
  /// the event's callstack path (FAULT_retransmit / FAULT_duplicate /
  /// FAULT_straggler), so fault kinds are distinguishable under every
  /// label policy that looks at callstacks, and fault presence under all
  /// of them (distinct node type).
  void record_fault_event(RankCtx& ctx, int peer, int tag,
                          std::uint32_t size_bytes, std::string_view cause);
  void record_init_events();
  void record_finalize_event(RankCtx& ctx);
  std::uint32_t callstack_id(RankCtx& ctx, std::string_view mpi_function);

  RequestState& request_state(RankCtx& ctx, std::uint64_t request_id);
  [[noreturn]] void throw_deadlock();

  void push_transit(TransitMsg msg);
  TransitMsg pop_transit();

  SimConfig config_;
  RankProgram program_;
  NetworkModel network_;
  FaultModel faults_;
  trace::Trace trace_;
  RunStats stats_;
  const ReplaySchedule* replay_ = nullptr;

  std::vector<std::unique_ptr<RankCtx>> ranks_;
  std::vector<TransitMsg> transit_;  // binary min-heap by (deliver_time, order)
  std::unordered_map<std::uint64_t, double> channel_last_delivery_;
  std::uint64_t order_counter_ = 0;
  std::uint64_t completion_counter_ = 0;
  std::uint64_t processed_calls_ = 0;
  std::uint64_t matched_messages_ = 0;
  std::uint64_t max_unexpected_depth_ = 0;
  bool ran_ = false;
  bool threads_started_ = false;

  static constexpr int kEngineToken = -1;
  std::mutex mutex_;
  std::condition_variable cv_;
  int token_ = kEngineToken;
  bool aborting_ = false;
};

}  // namespace anacin::sim

#include "sim/network.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace anacin::sim {

NetworkModel::NetworkModel(const NetworkConfig& config,
                           const SimConfig& sim_config, Rng rng)
    : config_(config), num_ranks_(sim_config.num_ranks), rng_(rng) {
  config_.validate();
  ranks_per_node_ =
      (sim_config.num_ranks + sim_config.num_nodes - 1) / sim_config.num_nodes;
}

int NetworkModel::node_of(int rank) const {
  ANACIN_CHECK(rank >= 0 && rank < num_ranks_,
               "rank " << rank << " out of range");
  return rank / ranks_per_node_;
}

NetworkModel::Delay NetworkModel::sample(int src_rank, int dst_rank,
                                         std::uint32_t size_bytes) {
  const bool intra = same_node(src_rank, dst_rank);
  Delay delay;
  delay.delay_us = (intra ? config_.latency_intra_us : config_.latency_inter_us) +
                   static_cast<double>(size_bytes) / config_.bandwidth_bytes_per_us;
  const double jitter_probability =
      intra ? config_.nd_fraction
            : std::min(1.0,
                       config_.nd_fraction * config_.inter_node_nd_multiplier);
  if (rng_.bernoulli(jitter_probability)) {
    const double mean =
        intra ? config_.jitter_mean_intra_us : config_.jitter_mean_inter_us;
    if (mean > 0.0) {
      delay.delay_us += rng_.exponential(mean);
      delay.jittered = true;
    }
  }
  return delay;
}

}  // namespace anacin::sim

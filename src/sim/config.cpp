#include "sim/config.hpp"

#include "support/error.hpp"

namespace anacin::sim {

void NetworkConfig::validate() const {
  ANACIN_CHECK(send_overhead_us >= 0 && recv_overhead_us >= 0,
               "overheads must be non-negative");
  ANACIN_CHECK(latency_intra_us >= 0 && latency_inter_us >= 0,
               "latencies must be non-negative");
  ANACIN_CHECK(bandwidth_bytes_per_us > 0, "bandwidth must be positive");
  ANACIN_CHECK(nd_fraction >= 0.0 && nd_fraction <= 1.0,
               "nd_fraction must be in [0,1], got " << nd_fraction);
  ANACIN_CHECK(jitter_mean_intra_us >= 0 && jitter_mean_inter_us >= 0,
               "jitter means must be non-negative");
  ANACIN_CHECK(inter_node_nd_multiplier >= 1.0,
               "inter-node ND multiplier must be >= 1");
}

json::Value NetworkConfig::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("send_overhead_us", send_overhead_us);
  doc.set("recv_overhead_us", recv_overhead_us);
  doc.set("latency_intra_us", latency_intra_us);
  doc.set("latency_inter_us", latency_inter_us);
  doc.set("bandwidth_bytes_per_us", bandwidth_bytes_per_us);
  doc.set("nd_fraction", nd_fraction);
  doc.set("jitter_mean_intra_us", jitter_mean_intra_us);
  doc.set("jitter_mean_inter_us", jitter_mean_inter_us);
  doc.set("inter_node_nd_multiplier", inter_node_nd_multiplier);
  return doc;
}

NetworkConfig NetworkConfig::from_json(const json::Value& doc) {
  NetworkConfig config;
  config.send_overhead_us = doc.at("send_overhead_us").as_number();
  config.recv_overhead_us = doc.at("recv_overhead_us").as_number();
  config.latency_intra_us = doc.at("latency_intra_us").as_number();
  config.latency_inter_us = doc.at("latency_inter_us").as_number();
  config.bandwidth_bytes_per_us = doc.at("bandwidth_bytes_per_us").as_number();
  config.nd_fraction = doc.at("nd_fraction").as_number();
  config.jitter_mean_intra_us = doc.at("jitter_mean_intra_us").as_number();
  config.jitter_mean_inter_us = doc.at("jitter_mean_inter_us").as_number();
  config.inter_node_nd_multiplier =
      doc.at("inter_node_nd_multiplier").as_number();
  config.validate();
  return config;
}

void SimConfig::validate() const {
  ANACIN_CHECK(num_ranks >= 1, "num_ranks must be >= 1, got " << num_ranks);
  ANACIN_CHECK(num_nodes >= 1 && num_nodes <= num_ranks,
               "num_nodes must be in [1, num_ranks], got " << num_nodes);
  ANACIN_CHECK(max_calls > 0, "max_calls must be positive");
  network.validate();
  faults.validate(num_ranks, num_nodes);
}

int SimConfig::node_of(int rank) const {
  const int ranks_per_node = (num_ranks + num_nodes - 1) / num_nodes;
  return rank / ranks_per_node;
}

json::Value SimConfig::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("num_ranks", num_ranks);
  doc.set("num_nodes", num_nodes);
  doc.set("seed", static_cast<std::uint64_t>(seed));
  doc.set("network", network.to_json());
  // max_calls is part of the config's identity (it changes when a run
  // fails), so it belongs in the canonical form hashed by src/store.
  doc.set("max_calls", max_calls);
  // Faults are part of the identity too: two runs that differ only in
  // their FaultConfig must never share a store key.
  doc.set("faults", faults.to_json());
  doc.set("replay", replay != nullptr);
  return doc;
}

SimConfig SimConfig::from_json(const json::Value& doc) {
  SimConfig config;
  config.num_ranks = static_cast<int>(doc.at("num_ranks").as_int());
  config.num_nodes = static_cast<int>(doc.at("num_nodes").as_int());
  // JSON numbers are doubles, so seeds above 2^53 lose low bits here;
  // consumers that need the exact seed (the worker protocol) transport it
  // as a decimal string alongside this document. Clamp instead of casting
  // out of range — double→uint64 overflow is undefined behavior.
  const double seed_number = doc.at("seed").as_number();
  ANACIN_CHECK(seed_number >= 0.0, "seed must be non-negative");
  constexpr double kTwo64 = 18446744073709551616.0;
  config.seed = seed_number >= kTwo64
                    ? ~std::uint64_t{0}
                    : static_cast<std::uint64_t>(seed_number);
  config.network = NetworkConfig::from_json(doc.at("network"));
  config.max_calls = static_cast<std::uint64_t>(doc.at("max_calls").as_int());
  config.faults = FaultConfig::from_json(doc.at("faults"));
  if (doc.at("replay").as_bool()) {
    throw ConfigError(
        "a SimConfig with a replay schedule cannot round-trip through JSON");
  }
  config.validate();
  return config;
}

}  // namespace anacin::sim

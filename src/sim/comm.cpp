#include "sim/comm.hpp"

#include <algorithm>

#include "sim/engine.hpp"
#include "support/error.hpp"

namespace anacin::sim {

CallScope::~CallScope() {
  if (comm_ != nullptr) comm_->pop_frame();
}

Comm::Comm(Engine* engine, int rank) : engine_(engine), rank_(rank) {
  ANACIN_CHECK(engine_ != nullptr, "Comm requires an engine");
}

int Comm::size() const { return engine_->num_ranks(); }
int Comm::node() const { return engine_->node_of(rank_); }
int Comm::num_nodes() const { return engine_->num_nodes(); }

void Comm::compute(double microseconds) {
  Engine::Call call;
  call.kind = Engine::CallKind::kCompute;
  call.compute_us = microseconds;
  engine_->rank_call(rank_, call);
}

void Comm::send(int dest, int tag, Payload payload, std::uint32_t size_hint) {
  Engine::Call call;
  call.kind = Engine::CallKind::kSend;
  call.send_mode = Engine::SendMode::kBuffered;
  call.peer = dest;
  call.tag = tag;
  call.payload = std::move(payload);
  call.size_hint = size_hint;
  engine_->rank_call(rank_, call);
}

Request Comm::isend(int dest, int tag, Payload payload,
                    std::uint32_t size_hint) {
  Engine::Call call;
  call.kind = Engine::CallKind::kSend;
  call.send_mode = Engine::SendMode::kNonblocking;
  call.peer = dest;
  call.tag = tag;
  call.payload = std::move(payload);
  call.size_hint = size_hint;
  engine_->rank_call(rank_, call);
  return Request(call.out_request);
}

void Comm::ssend(int dest, int tag, Payload payload, std::uint32_t size_hint) {
  Engine::Call call;
  call.kind = Engine::CallKind::kSend;
  call.send_mode = Engine::SendMode::kSync;
  call.peer = dest;
  call.tag = tag;
  call.payload = std::move(payload);
  call.size_hint = size_hint;
  engine_->rank_call(rank_, call);
}

Request Comm::issend(int dest, int tag, Payload payload,
                     std::uint32_t size_hint) {
  Engine::Call call;
  call.kind = Engine::CallKind::kSend;
  call.send_mode = Engine::SendMode::kNonblockingSync;
  call.peer = dest;
  call.tag = tag;
  call.payload = std::move(payload);
  call.size_hint = size_hint;
  engine_->rank_call(rank_, call);
  return Request(call.out_request);
}

ProbeResult Comm::probe(int source, int tag) {
  Engine::Call call;
  call.kind = Engine::CallKind::kProbe;
  call.src_filter = source;
  call.tag_filter = tag;
  engine_->rank_call(rank_, call);
  return call.out_probe;
}

std::optional<ProbeResult> Comm::iprobe(int source, int tag) {
  Engine::Call call;
  call.kind = Engine::CallKind::kIprobe;
  call.src_filter = source;
  call.tag_filter = tag;
  engine_->rank_call(rank_, call);
  if (!call.out_flag) return std::nullopt;
  return call.out_probe;
}

RecvResult Comm::sendrecv(int dest, int send_tag, Payload payload, int source,
                          int recv_tag) {
  // The outgoing message is buffered, so posting it before the blocking
  // receive cannot deadlock — the same guarantee MPI_Sendrecv provides.
  send(dest, send_tag, std::move(payload));
  return recv(source, recv_tag);
}

RecvResult Comm::recv(int source, int tag) {
  Engine::Call call;
  call.kind = Engine::CallKind::kRecv;
  call.src_filter = source;
  call.tag_filter = tag;
  engine_->rank_call(rank_, call);
  return std::move(call.out_recv);
}

Request Comm::irecv(int source, int tag) {
  Engine::Call call;
  call.kind = Engine::CallKind::kIrecv;
  call.src_filter = source;
  call.tag_filter = tag;
  engine_->rank_call(rank_, call);
  return Request(call.out_request);
}

RecvResult Comm::wait(Request request) {
  ANACIN_CHECK(request.valid(), "wait on an invalid request");
  Engine::Call call;
  call.kind = Engine::CallKind::kWait;
  call.request_ids = {request.id_};
  engine_->rank_call(rank_, call);
  return std::move(call.out_recv);
}

WaitAnyResult Comm::wait_any(std::span<const Request> requests) {
  Engine::Call call;
  call.kind = Engine::CallKind::kWaitAny;
  call.request_ids.reserve(requests.size());
  for (const Request& request : requests) {
    ANACIN_CHECK(request.valid(), "wait_any on an invalid request");
    call.request_ids.push_back(request.id_);
  }
  engine_->rank_call(rank_, call);
  return WaitAnyResult{call.out_index, std::move(call.out_recv)};
}

std::vector<RecvResult> Comm::wait_all(std::span<const Request> requests) {
  Engine::Call call;
  call.kind = Engine::CallKind::kWaitAll;
  call.request_ids.reserve(requests.size());
  for (const Request& request : requests) {
    ANACIN_CHECK(request.valid(), "wait_all on an invalid request");
    call.request_ids.push_back(request.id_);
  }
  engine_->rank_call(rank_, call);
  return std::move(call.out_recv_all);
}

CallScope Comm::scoped_frame(std::string_view name) {
  engine_->push_frame(rank_, std::string(name));
  return CallScope(this);
}

void Comm::pop_frame() { engine_->pop_frame(rank_); }

Rng& Comm::rng() { return engine_->rank_rng(rank_); }

int Comm::next_collective_tag() {
  // Collectives are called in the same order on every rank, so the counter
  // values agree across ranks; 64 tags per invocation leave room for
  // multi-round algorithms.
  const int tag = kCollectiveTagBase + collective_counter_ * 64;
  ++collective_counter_;
  return tag;
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

void Comm::barrier() {
  const CallScope scope = scoped_frame("MPI_Barrier");
  const int tag = next_collective_tag();
  const int n = size();
  for (int k = 1, round = 0; k < n; k <<= 1, ++round) {
    const int to = (rank_ + k) % n;
    const int from = (rank_ - k % n + n) % n;
    send(to, tag + round);
    (void)recv(from, tag + round);
  }
}

Payload Comm::broadcast(int root, Payload value) {
  ANACIN_CHECK(root >= 0 && root < size(), "broadcast root out of range");
  const CallScope scope = scoped_frame("MPI_Bcast");
  const int tag = next_collective_tag();
  const int n = size();
  // Binary tree over virtual ranks (root maps to virtual rank 0).
  const int vrank = (rank_ - root + n) % n;
  if (vrank != 0) {
    const int vparent = (vrank - 1) / 2;
    value = recv((vparent + root) % n, tag).payload;
  }
  for (const int vchild : {2 * vrank + 1, 2 * vrank + 2}) {
    if (vchild < n) send((vchild + root) % n, tag, value);
  }
  return value;
}

namespace {
double apply_reduce_op(Comm::ReduceOp op, double a, double b) {
  switch (op) {
    case Comm::ReduceOp::kSum: return a + b;
    case Comm::ReduceOp::kMin: return std::min(a, b);
    case Comm::ReduceOp::kMax: return std::max(a, b);
  }
  throw Error("unhandled reduce op");
}
}  // namespace

double Comm::reduce(int root, double value, ReduceOp op) {
  ANACIN_CHECK(root >= 0 && root < size(), "reduce root out of range");
  const CallScope scope = scoped_frame("MPI_Reduce");
  const int tag = next_collective_tag();
  const int n = size();
  const int vrank = (rank_ - root + n) % n;
  // Children contribute in a fixed order, so floating-point reduction is
  // deterministic — contrast with the reduce_tree mini-app, which
  // deliberately accumulates in arrival order.
  double accumulator = value;
  for (const int vchild : {2 * vrank + 1, 2 * vrank + 2}) {
    if (vchild < n) {
      const RecvResult r = recv((vchild + root) % n, tag);
      accumulator =
          apply_reduce_op(op, accumulator, double_from_payload(r.payload));
    }
  }
  if (vrank != 0) {
    const int vparent = (vrank - 1) / 2;
    send((vparent + root) % n, tag, payload_from_double(accumulator));
    return 0.0;
  }
  return accumulator;
}

double Comm::reduce_sum(int root, double value) {
  return reduce(root, value, ReduceOp::kSum);
}

double Comm::allreduce(double value, ReduceOp op) {
  const CallScope scope = scoped_frame("MPI_Allreduce");
  const double total = reduce(0, value, op);
  const Payload result =
      broadcast(0, rank_ == 0 ? payload_from_double(total) : Payload{});
  return double_from_payload(result);
}

double Comm::allreduce_sum(double value) {
  return allreduce(value, ReduceOp::kSum);
}

std::vector<Payload> Comm::gather(int root, Payload value) {
  ANACIN_CHECK(root >= 0 && root < size(), "gather root out of range");
  const CallScope scope = scoped_frame("MPI_Gather");
  const int tag = next_collective_tag();
  const int n = size();
  if (rank_ != root) {
    send(root, tag, std::move(value));
    return {};
  }
  std::vector<Payload> gathered(static_cast<std::size_t>(n));
  gathered[static_cast<std::size_t>(rank_)] = std::move(value);
  for (int src = 0; src < n; ++src) {
    if (src == root) continue;
    gathered[static_cast<std::size_t>(src)] = recv(src, tag).payload;
  }
  return gathered;
}

std::vector<Payload> Comm::allgather(Payload value) {
  const CallScope scope = scoped_frame("MPI_Allgather");
  std::vector<Payload> gathered = gather(0, std::move(value));
  // Rank 0 rebroadcasts the concatenation with per-chunk length prefixes.
  const int n = size();
  Payload packed;
  if (rank_ == 0) {
    for (const Payload& chunk : gathered) {
      const auto length = static_cast<std::uint64_t>(chunk.size());
      const Payload length_bytes = payload_from_u64(length);
      packed.insert(packed.end(), length_bytes.begin(), length_bytes.end());
      packed.insert(packed.end(), chunk.begin(), chunk.end());
    }
  }
  const Payload broadcasted = broadcast(0, std::move(packed));
  std::vector<Payload> result;
  result.reserve(static_cast<std::size_t>(n));
  std::size_t offset = 0;
  for (int r = 0; r < n; ++r) {
    ANACIN_CHECK(offset + sizeof(std::uint64_t) <= broadcasted.size(),
                 "allgather decode underflow");
    Payload length_bytes(broadcasted.begin() + static_cast<std::ptrdiff_t>(offset),
                         broadcasted.begin() +
                             static_cast<std::ptrdiff_t>(offset +
                                                         sizeof(std::uint64_t)));
    const auto length =
        static_cast<std::size_t>(u64_from_payload(length_bytes));
    offset += sizeof(std::uint64_t);
    ANACIN_CHECK(offset + length <= broadcasted.size(),
                 "allgather decode underflow");
    result.emplace_back(
        broadcasted.begin() + static_cast<std::ptrdiff_t>(offset),
        broadcasted.begin() + static_cast<std::ptrdiff_t>(offset + length));
    offset += length;
  }
  return result;
}

Payload Comm::scatter(int root, std::vector<Payload> chunks) {
  ANACIN_CHECK(root >= 0 && root < size(), "scatter root out of range");
  const CallScope scope = scoped_frame("MPI_Scatter");
  const int tag = next_collective_tag();
  const int n = size();
  if (rank_ == root) {
    ANACIN_CHECK(static_cast<int>(chunks.size()) == n,
                 "scatter root needs one chunk per rank, got "
                     << chunks.size());
    for (int dst = 0; dst < n; ++dst) {
      if (dst == root) continue;
      send(dst, tag, std::move(chunks[static_cast<std::size_t>(dst)]));
    }
    return std::move(chunks[static_cast<std::size_t>(root)]);
  }
  return recv(root, tag).payload;
}

double Comm::scan_sum(double value) {
  const CallScope scope = scoped_frame("MPI_Scan");
  const int tag = next_collective_tag();
  // Linear pipeline: receive the prefix from the left neighbor, add our
  // value, forward to the right. O(n) depth but simple and deterministic.
  double prefix = value;
  if (rank_ > 0) {
    prefix += double_from_payload(recv(rank_ - 1, tag).payload);
  }
  if (rank_ + 1 < size()) {
    send(rank_ + 1, tag, payload_from_double(prefix));
  }
  return prefix;
}

std::vector<Payload> Comm::all_to_all(std::vector<Payload> send_buffers) {
  const int n = size();
  ANACIN_CHECK(static_cast<int>(send_buffers.size()) == n,
               "all_to_all needs one buffer per rank, got "
                   << send_buffers.size());
  const CallScope scope = scoped_frame("MPI_Alltoall");
  const int tag = next_collective_tag();
  std::vector<Payload> received(static_cast<std::size_t>(n));
  received[static_cast<std::size_t>(rank_)] =
      std::move(send_buffers[static_cast<std::size_t>(rank_)]);
  // Rotation schedule: in step i exchange with (rank + i) and (rank - i).
  // Sends are buffered, so the blocking receive cannot deadlock.
  for (int i = 1; i < n; ++i) {
    const int to = (rank_ + i) % n;
    const int from = (rank_ - i + n) % n;
    send(to, tag, std::move(send_buffers[static_cast<std::size_t>(to)]));
    received[static_cast<std::size_t>(from)] = recv(from, tag).payload;
  }
  return received;
}

}  // namespace anacin::sim

#include "sim/simulator.hpp"

namespace anacin::sim {

RunResult run_simulation(const SimConfig& config, const RankProgram& program) {
  Engine engine(config, program);
  return engine.run();
}

}  // namespace anacin::sim

#pragma once

#include <cstdint>
#include <vector>

#include "support/json.hpp"
#include "support/rng.hpp"

namespace anacin::sim {

/// Configuration of the deterministic fault-injection layer.
///
/// Real HPC runs are non-deterministic not only because of congestion
/// jitter but also because of *faults*: messages dropped and retransmitted
/// by the transport, spurious duplicates, straggler processes, and slow
/// nodes. Every knob here is sampled from a seeded RNG stream derived from
/// the run seed, so a faulty execution is exactly as reproducible as a
/// fault-free one — identical (program, SimConfig) pairs still give
/// bit-identical traces, and injected faults appear as labelled `kFault`
/// events in the trace and event graph.
struct FaultConfig {
  /// Probability that one transmission attempt of a message is dropped.
  /// A dropped attempt is retransmitted after `retry_timeout_us`; after
  /// `max_retries` retransmissions the final attempt always succeeds, so
  /// delivery is guaranteed (bounded retransmit, no livelock).
  double drop_probability = 0.0;
  /// Maximum number of retransmissions per message (>= 0).
  int max_retries = 3;
  /// Virtual time between a dropped attempt and its retransmission (µs).
  double retry_timeout_us = 50.0;
  /// Probability that the network delivers a spurious duplicate of a
  /// message. Duplicates are detected at the receiver (by sequence
  /// number), recorded as fault events, and discarded — they never match
  /// a receive.
  double duplicate_probability = 0.0;
  /// Ranks whose compute phases run `straggler_multiplier` times slower.
  std::vector<int> straggler_ranks;
  double straggler_multiplier = 4.0;
  /// Nodes whose attached ranks see both compute and link latency scaled
  /// by `node_slowdown_multiplier` (a degraded switch / thermal throttle).
  std::vector<int> slow_nodes;
  double node_slowdown_multiplier = 2.0;

  /// True when any fault mechanism can fire.
  bool enabled() const;

  /// Validate against the simulation shape. Throws ConfigError.
  void validate(int num_ranks, int num_nodes) const;

  json::Value to_json() const;
  static FaultConfig from_json(const json::Value& doc);
};

/// Per-run fault sampler. Owns an independent RNG stream (derived from the
/// run seed), so enabling faults never perturbs the network-jitter or
/// per-rank program RNG streams: a run with an all-defaults FaultConfig is
/// bit-identical to one simulated before this subsystem existed.
class FaultModel {
public:
  FaultModel(const FaultConfig& config, int num_ranks, int num_nodes,
             Rng rng);

  /// What the transport does to one message.
  struct MessageFate {
    /// Transmission attempts dropped before the successful one
    /// (each costs `retry_timeout_us` of delivery latency).
    int dropped_attempts = 0;
    bool duplicated = false;
    /// Extra transit delay of the duplicate copy beyond the original.
    double duplicate_extra_delay_us = 0.0;
  };

  bool enabled() const { return config_.enabled(); }
  const FaultConfig& config() const { return config_; }

  /// Sample drop/duplicate outcomes for one message send. Deterministic
  /// given the model's seed and call sequence.
  MessageFate sample_message(int src_rank, int dst_rank);

  /// Combined compute-slowdown factor for a rank (straggler × slow node).
  /// 1.0 when the rank is unaffected.
  double compute_multiplier(int rank) const;

  /// Link-latency factor: `node_slowdown_multiplier` when either endpoint
  /// sits on a slow node, else 1.0.
  double latency_multiplier(int src_rank, int dst_rank) const;

  bool is_straggler(int rank) const;
  bool on_slow_node(int rank) const;

private:
  FaultConfig config_;
  int num_ranks_ = 0;
  int ranks_per_node_ = 1;
  std::vector<char> straggler_;  // indexed by rank
  std::vector<char> slow_node_;  // indexed by node
  Rng rng_;
};

}  // namespace anacin::sim

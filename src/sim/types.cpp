#include "sim/types.hpp"

#include "support/error.hpp"

namespace anacin::sim {

namespace {
template <typename T>
Payload pack(const T* data, std::size_t count) {
  Payload out(count * sizeof(T));
  if (count > 0) std::memcpy(out.data(), data, out.size());
  return out;
}

template <typename T>
void unpack(const Payload& payload, T* out, std::size_t count,
            const char* what) {
  ANACIN_CHECK(payload.size() == count * sizeof(T),
               "payload size " << payload.size() << " does not hold " << what);
  if (count > 0) std::memcpy(out, payload.data(), payload.size());
}
}  // namespace

Payload payload_from_double(double value) { return pack(&value, 1); }

Payload payload_from_doubles(std::span<const double> values) {
  return pack(values.data(), values.size());
}

Payload payload_from_u64(std::uint64_t value) { return pack(&value, 1); }

Payload payload_from_string(std::string_view text) {
  return pack(reinterpret_cast<const std::byte*>(text.data()), text.size());
}

Payload payload_of_size(std::size_t bytes) { return Payload(bytes); }

double double_from_payload(const Payload& payload) {
  double value = 0.0;
  unpack(payload, &value, 1, "a double");
  return value;
}

std::vector<double> doubles_from_payload(const Payload& payload) {
  ANACIN_CHECK(payload.size() % sizeof(double) == 0,
               "payload size " << payload.size() << " is not a whole number of doubles");
  std::vector<double> values(payload.size() / sizeof(double));
  if (!values.empty()) {
    std::memcpy(values.data(), payload.data(), payload.size());
  }
  return values;
}

std::uint64_t u64_from_payload(const Payload& payload) {
  std::uint64_t value = 0;
  unpack(payload, &value, 1, "a u64");
  return value;
}

std::string string_from_payload(const Payload& payload) {
  return std::string(reinterpret_cast<const char*>(payload.data()),
                     payload.size());
}

}  // namespace anacin::sim

#include "proc/worker_main.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

#include "graph/event_graph.hpp"
#include "kernels/distance_matrix.hpp"
#include "kernels/kernel.hpp"
#include "proc/protocol.hpp"
#include "sim/engine.hpp"
#include "store/codec.hpp"
#include "support/error.hpp"
#include "support/failure_injector.hpp"

namespace anacin::proc {

namespace {

std::uint64_t parse_seed(const std::string& text) {
  try {
    std::size_t consumed = 0;
    const std::uint64_t seed = std::stoull(text, &consumed);
    ANACIN_CHECK(consumed == text.size(), "trailing garbage");
    return seed;
  } catch (const std::exception&) {
    throw PermanentError("worker: malformed seed '" + text + "' in request");
  }
}

store::Digest parse_digest(const json::Value& request,
                           const std::string& key) {
  const auto digest = store::Digest::from_hex(request.at(key).as_string());
  if (!digest) {
    throw PermanentError("worker: malformed digest '" +
                         request.at(key).as_string() + "' in request");
  }
  return *digest;
}

/// Execute one `run` unit: make the store contain the run artifact. The
/// body mirrors run_campaign's in-process unit (including which RunStats
/// fields the artifact carries) so isolated campaigns are bit-identical.
json::Value execute_run(store::ArtifactStore& store,
                        const json::Value& request) {
  const std::string pattern = request.at("pattern").as_string();
  const patterns::PatternConfig shape =
      patterns::PatternConfig::from_json(request.at("shape"));
  sim::SimConfig sim_config = sim::SimConfig::from_json(request.at("sim"));
  sim_config.seed = parse_seed(request.at("seed").as_string());

  const store::Digest key =
      store::ArtifactStore::run_key(pattern, shape, sim_config);
  json::Value reply = json::Value::object();
  reply.set("status", "ok");
  reply.set("key", key.to_hex());
  if (store.load_run(key)) return reply;  // warm store: nothing to compute

  const auto pattern_impl = patterns::make_pattern(pattern);
  const sim::RunResult run =
      sim::run_simulation(sim_config, pattern_impl->program(shape));
  store::EncodedRun encoded;
  encoded.graph = graph::EventGraph::from_trace(run.trace);
  encoded.messages = run.stats.messages;
  encoded.wildcard_recvs = run.stats.wildcard_recvs;
  encoded.drops = run.stats.drops;
  encoded.duplicates = run.stats.duplicates;
  encoded.straggler_events = run.stats.straggler_events;
  store.save_run(key, encoded);
  return reply;
}

/// Execute one `replay` unit: make the store contain the replayed-run
/// artifact. The recorded schedule is itself a store artifact (named by
/// digest, shipped to agents by hash like any other input); the request's
/// `freed` array lists the flat rank-major schedule entries to free before
/// replaying. Mirrors execute_run's artifact shape so replayed runs feed
/// the same pair/feature machinery.
json::Value execute_replay(store::ArtifactStore& store,
                           const json::Value& request) {
  const std::string pattern = request.at("pattern").as_string();
  const patterns::PatternConfig shape =
      patterns::PatternConfig::from_json(request.at("shape"));
  sim::SimConfig sim_config = sim::SimConfig::from_json(request.at("sim"));
  sim_config.seed = parse_seed(request.at("seed").as_string());
  const store::Digest schedule_digest = parse_digest(request, "schedule");

  std::vector<std::size_t> freed;
  for (const json::Value& index : request.at("freed").items()) {
    const std::int64_t value = index.as_int();
    if (value < 0) {
      throw PermanentError("worker: negative freed index in replay request");
    }
    freed.push_back(static_cast<std::size_t>(value));
  }

  const store::Digest key = store::ArtifactStore::replay_run_key(
      pattern, shape, sim_config, schedule_digest, freed);
  json::Value reply = json::Value::object();
  reply.set("status", "ok");
  reply.set("key", key.to_hex());
  if (store.load_run(key)) return reply;

  auto schedule = store.load_schedule(schedule_digest);
  if (!schedule) {
    throw PermanentError("worker: schedule artifact " +
                         schedule_digest.to_hex() +
                         " missing from the store — replay units are "
                         "dispatched only after the recording completes");
  }
  for (const std::size_t index : freed) {
    if (!schedule->free_entry(index)) {
      throw PermanentError("worker: freed index " + std::to_string(index) +
                           " out of range for schedule " +
                           schedule_digest.to_hex());
    }
  }
  sim_config.replay = &*schedule;

  const auto pattern_impl = patterns::make_pattern(pattern);
  const sim::RunResult run =
      sim::run_simulation(sim_config, pattern_impl->program(shape));
  store::EncodedRun encoded;
  encoded.graph = graph::EventGraph::from_trace(run.trace);
  encoded.messages = run.stats.messages;
  encoded.wildcard_recvs = run.stats.wildcard_recvs;
  encoded.drops = run.stats.drops;
  encoded.duplicates = run.stats.duplicates;
  encoded.straggler_events = run.stats.straggler_events;
  store.save_run(key, encoded);
  return reply;
}

/// Execute one `pair` unit: make the store contain the distance artifact.
json::Value execute_pair(store::ArtifactStore& store,
                         const json::Value& request) {
  const std::string kernel_spec = request.at("kernel").as_string();
  const kernels::LabelPolicy policy =
      kernels::label_policy_from_name(request.at("policy").as_string());
  const store::Digest a = parse_digest(request, "a");
  const store::Digest b = parse_digest(request, "b");

  const store::Digest key =
      store::ArtifactStore::distance_key(kernel_spec, policy, a, b);
  json::Value reply = json::Value::object();
  reply.set("status", "ok");
  reply.set("key", key.to_hex());
  if (store.load_distance(key)) return reply;

  // Feature histograms are themselves store artifacts: across the many
  // pair units that share a run, only the first child pays for extraction.
  // Cached histograms round-trip bit-exactly, so this keeps isolated and
  // in-process campaigns byte-identical.
  const auto kernel = kernels::make_kernel(kernel_spec);
  const auto features_of = [&](const store::Digest& digest) {
    const store::Digest features_key =
        store::ArtifactStore::features_key(kernel_spec, policy, digest);
    if (auto cached = store.load_features(features_key)) {
      return std::move(*cached);
    }
    auto run = store.load_run(digest);
    if (!run) {
      throw PermanentError("worker: run artifact " + digest.to_hex() +
                           " missing from the store — pair units are "
                           "dispatched only after their runs complete");
    }
    kernels::FeatureVector features =
        kernel->features(kernels::build_labeled_graph(run->graph, policy));
    store.save_features(features_key, features);
    return features;
  };
  const kernels::FeatureVector features_a = features_of(a);
  const kernels::FeatureVector features_b = features_of(b);
  const double distance = kernels::counted_distance(features_a, features_b);
  store.save_distance(key, distance);
  return reply;
}

bool send_fail(std::mutex& write_mutex, const char* kind,
               const std::string& error) {
  json::Value payload = json::Value::object();
  payload.set("kind", kind);
  payload.set("error", error);
  const std::lock_guard<std::mutex> lock(write_mutex);
  return write_frame(STDOUT_FILENO, FrameType::kFail, payload.dump());
}

}  // namespace

json::Value execute_unit(store::ArtifactStore& store,
                         const json::Value& request) {
  const std::string type = request.at("type").as_string();
  if (type == "run") return execute_run(store, request);
  if (type == "pair") return execute_pair(store, request);
  if (type == "replay") return execute_replay(store, request);
  throw PermanentError("worker: unknown unit type '" + type + "'");
}

std::vector<store::Digest> unit_input_keys(const json::Value& request) {
  std::vector<store::Digest> keys;
  const std::string type = request.at("type").as_string();
  if (type == "pair") {
    keys.push_back(parse_digest(request, "a"));
    keys.push_back(parse_digest(request, "b"));
  } else if (type == "replay") {
    keys.push_back(parse_digest(request, "schedule"));
  }
  return keys;
}

json::Value make_run_request(const std::string& unit,
                             const std::string& pattern,
                             const patterns::PatternConfig& shape,
                             const sim::SimConfig& sim_config) {
  json::Value request = json::Value::object();
  request.set("unit", unit);
  request.set("type", "run");
  request.set("pattern", pattern);
  request.set("shape", shape.to_json());
  request.set("sim", sim_config.to_json());
  request.set("seed", std::to_string(sim_config.seed));
  request.set("result_key",
              store::ArtifactStore::run_key(pattern, shape, sim_config)
                  .to_hex());
  return request;
}

json::Value make_replay_request(const std::string& unit,
                                const std::string& pattern,
                                const patterns::PatternConfig& shape,
                                const sim::SimConfig& sim_config,
                                const store::Digest& schedule,
                                std::vector<std::size_t> freed) {
  // Canonicalize so equal freed *sets* map to equal requests and keys.
  std::sort(freed.begin(), freed.end());
  freed.erase(std::unique(freed.begin(), freed.end()), freed.end());
  json::Value request = json::Value::object();
  request.set("unit", unit);
  request.set("type", "replay");
  request.set("pattern", pattern);
  request.set("shape", shape.to_json());
  request.set("sim", sim_config.to_json());
  request.set("seed", std::to_string(sim_config.seed));
  request.set("schedule", schedule.to_hex());
  json::Value freed_array = json::Value::array();
  for (const std::size_t index : freed) {
    freed_array.push_back(static_cast<std::int64_t>(index));
  }
  request.set("freed", std::move(freed_array));
  request.set("result_key",
              store::ArtifactStore::replay_run_key(pattern, shape, sim_config,
                                                   schedule, freed)
                  .to_hex());
  return request;
}

json::Value make_pair_request(const std::string& unit,
                              const std::string& kernel_spec,
                              kernels::LabelPolicy policy,
                              const store::Digest& a,
                              const store::Digest& b) {
  json::Value request = json::Value::object();
  request.set("unit", unit);
  request.set("type", "pair");
  request.set("kernel", kernel_spec);
  request.set("policy", std::string(kernels::label_policy_name(policy)));
  request.set("a", a.to_hex());
  request.set("b", b.to_hex());
  request.set(
      "result_key",
      store::ArtifactStore::distance_key(kernel_spec, policy, a, b).to_hex());
  return request;
}

int worker_main(store::ArtifactStore& store, double heartbeat_interval_ms) {
  ::signal(SIGPIPE, SIG_IGN);
  const auto injector = support::FailureInjector::from_env();
  std::mutex write_mutex;

  while (true) {
    const ReadResult incoming = read_frame(STDIN_FILENO);
    if (incoming.status == ReadStatus::kEof) {
      return 0;  // parent closed our stdin at a boundary: clean shutdown
    }
    if (incoming.status != ReadStatus::kFrame) {
      // A torn frame on our own stdin means the parent-side stream broke
      // mid-write; exiting non-zero lets the pool's triage see the
      // difference from a retirement.
      std::fprintf(stderr, "worker: protocol error on stdin: %s\n",
                   incoming.error.c_str());
      return 1;
    }
    const Frame& frame = incoming.frame;
    if (frame.type != FrameType::kRequest) {
      std::fprintf(stderr, "worker: unexpected frame type %d\n",
                   static_cast<int>(frame.type));
      return 1;
    }
    std::string unit = "?";
    try {
      const json::Value request = json::parse(frame.payload);
      unit = request.at("unit").as_string();
      const Heartbeater heartbeater(STDOUT_FILENO, heartbeat_interval_ms,
                                    write_mutex);
      // Injected crashes/hangs fire in whichever process executes the
      // unit — here, when isolation is on.
      injector.apply_execution_hooks(unit);
      const json::Value reply = execute_unit(store, request);
      const std::lock_guard<std::mutex> lock(write_mutex);
      if (!write_frame(STDOUT_FILENO, FrameType::kResult, reply.dump())) {
        return 1;  // parent gone mid-reply
      }
    } catch (const TransientError& error) {
      if (!send_fail(write_mutex, "transient", error.what())) return 1;
    } catch (const std::exception& error) {
      if (!send_fail(write_mutex, "permanent", error.what())) return 1;
    }
  }
}

}  // namespace anacin::proc

#pragma once

#include <string>

#include "support/json.hpp"

namespace anacin::proc {

/// The campaign's contract with whatever executes its work units outside
/// the calling thread. Two implementations exist: proc::WorkerPool runs a
/// unit in a sandboxed fork/exec'd child on this machine
/// (--isolate=process), and net::AgentServer farms it to a remote
/// `anacin agent` over TCP (`anacin serve`). Both speak the same work-unit
/// request JSON (make_run_request / make_pair_request) and both make the
/// unit's result artifact appear in the campaign's content-addressed store
/// before execute() returns — which is what keeps local, isolated, and
/// distributed campaigns byte-identical.
class UnitExecutor {
 public:
  virtual ~UnitExecutor() = default;

  /// Execute one work unit: block until the unit's artifacts are in the
  /// campaign store, throw the typed taxonomy of support/error.hpp on
  /// failure (transient errors re-queue via the supervisor's retries).
  /// Thread safe — campaign pool workers call this concurrently.
  virtual json::Value execute(const std::string& unit_id,
                              const json::Value& request) = 0;
};

}  // namespace anacin::proc

#pragma once

#include <string>
#include <vector>

#include "kernels/labeled_graph.hpp"
#include "patterns/pattern.hpp"
#include "sim/config.hpp"
#include "store/hash.hpp"
#include "store/store.hpp"
#include "support/json.hpp"

namespace anacin::proc {

/// Build the request frame for one simulated run (`run:<i>` or
/// `reference`). Everything the unit is a function of travels fully
/// resolved — the child never re-derives a config, so parent and child
/// compute identical store keys. The seed additionally travels as a
/// decimal string: json::Value holds numbers as doubles, which would
/// silently round 64-bit seeds above 2^53. The request carries the
/// precomputed key of the unit's result artifact ("result_key"), so a
/// scheduler can short-circuit dispatch when its store already holds the
/// result (net::AgentServer) without re-deriving keys from the body.
json::Value make_run_request(const std::string& unit,
                             const std::string& pattern,
                             const patterns::PatternConfig& shape,
                             const sim::SimConfig& sim_config);

/// Build the request frame for one replayed run (`replay:<candidate>`): the
/// pattern/shape/sim travel like a run request (sim with replay unset — the
/// worker wires the schedule in after loading it), plus the digest of the
/// recorded schedule artifact and the flat rank-major indices of schedule
/// entries to free (sorted + deduplicated here so equal freed sets produce
/// equal requests and store keys).
json::Value make_replay_request(const std::string& unit,
                                const std::string& pattern,
                                const patterns::PatternConfig& shape,
                                const sim::SimConfig& sim_config,
                                const store::Digest& schedule,
                                std::vector<std::size_t> freed);

/// Build the request frame for one pair distance (`pair:<a>-<b>`). The two
/// run digests travel in request order — distance_key orders them
/// internally for the key, but the distance itself is computed in (a, b)
/// order so isolated results are float-identical to in-process ones.
json::Value make_pair_request(const std::string& unit,
                              const std::string& kernel_spec,
                              kernels::LabelPolicy policy,
                              const store::Digest& a, const store::Digest& b);

/// Execute one work-unit request against `store`: make the store contain
/// the unit's result artifact (a `run`, `pair`, or `replay` unit; see
/// make_run_request / make_pair_request / make_replay_request) and return
/// the reply document
/// {status, key}. Shared by the pipe worker (`anacin __worker`) and the
/// socket agent (`anacin agent`) so every execution environment computes
/// bit-identical artifacts. Throws the typed error taxonomy on failure.
json::Value execute_unit(store::ArtifactStore& store,
                         const json::Value& request);

/// Store keys a unit reads before executing: the two run artifacts for
/// `pair` units, the recorded schedule for `replay` units, empty for `run`
/// units. The agent uses this to prefetch missing inputs from the
/// scheduler.
std::vector<store::Digest> unit_input_keys(const json::Value& request);

/// Entry point of the `__worker` child process: serve request frames from
/// stdin until EOF (clean shutdown, exit 0), writing results to the shared
/// artifact store and replying with result/fail frames on stdout. A
/// heartbeat thread beats on stdout while a unit executes so the parent's
/// watchdog can tell "slow" from "wedged".
int worker_main(store::ArtifactStore& store, double heartbeat_interval_ms);

}  // namespace anacin::proc

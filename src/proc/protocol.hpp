#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace anacin::proc {

/// Frame types of the unified work-unit protocol. The same length-prefixed
/// codec runs over two transports: the worker pipe pair of
/// --isolate=process (types 1-4) and the scheduler/agent TCP sockets of
/// `anacin serve` / `anacin agent` (all types; see src/net). Wire format
/// of one frame: u32 little-endian payload length, one type byte, then the
/// payload (JSON text for control frames, raw bytes for object frames,
/// empty for heartbeats), and — in protocol v2 — a u32 little-endian
/// CRC32C trailer over header + payload. Heartbeat frames are tiny
/// (< PIPE_BUF), so a child's heartbeat thread can interleave them with
/// result frames under a write mutex without tearing.
enum class FrameType : std::uint8_t {
  kRequest = 1,    // scheduler/parent -> executor: one work unit (JSON)
  kResult = 2,     // executor -> scheduler/parent: unit succeeded (JSON)
  kFail = 3,       // executor -> scheduler/parent: unit threw (JSON)
  kHeartbeat = 4,  // executor -> scheduler/parent: still alive (empty)
  kHello = 5,      // agent -> scheduler: registration (JSON)
  kHelloOk = 6,    // scheduler -> agent: registration accepted (JSON)
  kFetch = 7,      // agent -> scheduler: need object <hex digest> (text)
  kObject = 8,     // either direction: 32-byte hex digest + envelope bytes
  kMissing = 9,    // scheduler -> agent: fetched object absent (text)
  kPublish = 10,   // agent -> scheduler: new object, same layout as kObject
  kShutdown = 11,  // scheduler -> agent: campaign over, do not reconnect
};

/// True for the type bytes the codec knows; anything else on the wire is
/// a protocol error, not a frame.
bool frame_type_is_known(std::uint8_t type);

/// Protocol versions of the frame codec. v1 is the legacy framing (no
/// trailer); v2 appends a CRC32C trailer so a corrupted frame surfaces as
/// a typed kCorrupt read instead of being decoded as garbage. The socket
/// transport negotiates the version at registration: kHello / kHelloOk
/// travel as v1 frames (the framing every version understands), carry a
/// "proto" field, and everything after the handshake uses the agreed
/// version. The worker pipes of --isolate=process skip negotiation —
/// parent and child are the same binary — and always speak kProtocolV2.
inline constexpr std::uint16_t kProtocolV1 = 1;
inline constexpr std::uint16_t kProtocolV2 = 2;
inline constexpr std::uint16_t kProtocolVersion = kProtocolV2;

/// Bytes a frame adds around its payload: 5-byte header, plus the 4-byte
/// CRC32C trailer in v2.
constexpr std::size_t frame_overhead(std::uint16_t version) {
  return version >= kProtocolV2 ? 9 : 5;
}

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::string payload;
};

/// Refuse to allocate for absurd lengths — a torn/corrupt header reads as
/// garbage, not a 4 GiB allocation.
constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/// Why read_frame returned without a frame — the triage question "did the
/// peer hang up cleanly, or did the stream break?" has different answers
/// for the worker pool (clean EOF = child retired vs. torn frame = crash
/// mid-write) and the socket layer (clean EOF = agent done vs. protocol
/// error = drop the connection). kCorrupt is the v2 refinement: the frame
/// arrived whole but its CRC32C does not match, so the bytes are
/// untrustworthy while the stream itself stays aligned — callers treat it
/// as a transient transport fault (drop the connection, re-queue the
/// unit), never as decodable data.
enum class ReadStatus : std::uint8_t {
  kFrame,    // a complete, well-formed frame was read
  kEof,      // the peer closed the stream at a frame boundary
  kTimeout,  // the deadline passed before a full frame arrived
  kCorrupt,  // v2: frame arrived whole but the CRC32C trailer mismatched
  kError,    // torn frame, oversized length, unknown type, or I/O error
};

struct ReadResult {
  ReadStatus status = ReadStatus::kError;
  Frame frame;        // valid only when status == kFrame
  std::string error;  // human-readable detail when status == kCorrupt/kError

  explicit operator bool() const { return status == ReadStatus::kFrame; }
};

/// Serialize one frame (header + payload + v2 trailer) into a contiguous
/// buffer — the single-buffer form both transports write, and what
/// bench/perf_net measures. Returns an empty buffer when payload exceeds
/// kMaxFramePayload.
std::vector<char> encode_frame(FrameType type, std::string_view payload,
                               std::uint16_t version = kProtocolVersion);

/// Write one frame, retrying short writes and EINTR. Returns false when
/// the peer is gone (EPIPE with SIGPIPE ignored) or the fd is broken —
/// never throws, because a dead peer is an expected condition handled by
/// triage (parent), disconnect handling (scheduler), or shutdown (child).
bool write_frame(int fd, FrameType type, std::string_view payload,
                 std::uint16_t version = kProtocolVersion);

/// Blocking read of one complete frame. A malformed header (length over
/// kMaxFramePayload or an unknown type byte) is rejected before any
/// payload allocation. `timeout_ms` < 0 blocks forever; otherwise the
/// whole frame must arrive within the budget (poll()-based, so it works
/// for pipes and sockets alike) or the result is kTimeout. When `version`
/// is v2, the CRC32C trailer is verified and a mismatch reads as
/// kCorrupt.
ReadResult read_frame(int fd, int timeout_ms = -1,
                      std::uint16_t version = kProtocolVersion);

/// Emits heartbeat frames every interval while alive. Two forms: the fd
/// constructor writes kHeartbeat frames directly (sharing `write_mutex`
/// with the unit's result writes so frames never interleave mid-frame),
/// and the callback constructor invokes `beat` — which lets the agent
/// route heartbeats through its connection object so chaos injection
/// (net/chaos.hpp) applies to them like any other frame. Scoped to one
/// work unit so an idle executor stays silent. An injected SIGSTOP
/// freezes this thread along with the unit — which is exactly what lets
/// the peer's stall detector observe a wedged executor.
class Heartbeater {
 public:
  Heartbeater(int fd, double interval_ms, std::mutex& write_mutex,
              std::uint16_t version = kProtocolVersion);
  Heartbeater(std::function<void()> beat, double interval_ms);
  ~Heartbeater();

  Heartbeater(const Heartbeater&) = delete;
  Heartbeater& operator=(const Heartbeater&) = delete;

 private:
  void loop();

  std::function<void()> beat_;
  std::chrono::duration<double, std::milli> interval_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace anacin::proc

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace anacin::proc {

/// Frame types of the unified work-unit protocol. The same length-prefixed
/// codec runs over two transports: the worker pipe pair of
/// --isolate=process (types 1-4) and the scheduler/agent TCP sockets of
/// `anacin serve` / `anacin agent` (all types; see src/net). Wire format
/// of one frame: u32 little-endian payload length, one type byte, then the
/// payload (JSON text for control frames, raw bytes for object frames,
/// empty for heartbeats). Heartbeat frames are tiny (< PIPE_BUF), so a
/// child's heartbeat thread can interleave them with result frames under a
/// write mutex without tearing.
enum class FrameType : std::uint8_t {
  kRequest = 1,    // scheduler/parent -> executor: one work unit (JSON)
  kResult = 2,     // executor -> scheduler/parent: unit succeeded (JSON)
  kFail = 3,       // executor -> scheduler/parent: unit threw (JSON)
  kHeartbeat = 4,  // executor -> scheduler/parent: still alive (empty)
  kHello = 5,      // agent -> scheduler: registration (JSON)
  kHelloOk = 6,    // scheduler -> agent: registration accepted (JSON)
  kFetch = 7,      // agent -> scheduler: need object <hex digest> (text)
  kObject = 8,     // either direction: 32-byte hex digest + envelope bytes
  kMissing = 9,    // scheduler -> agent: fetched object absent (text)
  kPublish = 10,   // agent -> scheduler: new object, same layout as kObject
};

/// True for the type bytes the codec knows; anything else on the wire is
/// a protocol error, not a frame.
bool frame_type_is_known(std::uint8_t type);

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::string payload;
};

/// Refuse to allocate for absurd lengths — a torn/corrupt header reads as
/// garbage, not a 4 GiB allocation.
constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/// Why read_frame returned without a frame — the triage question "did the
/// peer hang up cleanly, or did the stream break?" has different answers
/// for the worker pool (clean EOF = child retired vs. torn frame = crash
/// mid-write) and the socket layer (clean EOF = agent done vs. protocol
/// error = drop the connection).
enum class ReadStatus : std::uint8_t {
  kFrame,    // a complete, well-formed frame was read
  kEof,      // the peer closed the stream at a frame boundary
  kTimeout,  // the deadline passed before a full frame arrived
  kError,    // torn frame, oversized length, unknown type, or I/O error
};

struct ReadResult {
  ReadStatus status = ReadStatus::kError;
  Frame frame;        // valid only when status == kFrame
  std::string error;  // human-readable detail when status == kError

  explicit operator bool() const { return status == ReadStatus::kFrame; }
};

/// Serialize one frame (header + payload) into a contiguous buffer — the
/// single-buffer form both transports write, and what bench/perf_net
/// measures. Returns an empty buffer when payload exceeds kMaxFramePayload.
std::vector<char> encode_frame(FrameType type, std::string_view payload);

/// Write one frame, retrying short writes and EINTR. Returns false when
/// the peer is gone (EPIPE with SIGPIPE ignored) or the fd is broken —
/// never throws, because a dead peer is an expected condition handled by
/// triage (parent), disconnect handling (scheduler), or shutdown (child).
bool write_frame(int fd, FrameType type, std::string_view payload);

/// Blocking read of one complete frame. A malformed header (length over
/// kMaxFramePayload or an unknown type byte) is rejected before any
/// payload allocation. `timeout_ms` < 0 blocks forever; otherwise the
/// whole frame must arrive within the budget (poll()-based, so it works
/// for pipes and sockets alike) or the result is kTimeout.
ReadResult read_frame(int fd, int timeout_ms = -1);

/// Emits heartbeat frames on `fd` every interval while alive, sharing
/// `write_mutex` with the unit's result writes so frames never interleave
/// mid-frame. Scoped to one work unit so an idle executor stays silent.
/// An injected SIGSTOP freezes this thread along with the unit — which is
/// exactly what lets the peer's stall detector observe a wedged executor.
class Heartbeater {
 public:
  Heartbeater(int fd, double interval_ms, std::mutex& write_mutex);
  ~Heartbeater();

  Heartbeater(const Heartbeater&) = delete;
  Heartbeater& operator=(const Heartbeater&) = delete;

 private:
  void loop();

  int fd_;
  std::chrono::duration<double, std::milli> interval_;
  std::mutex& write_mutex_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace anacin::proc

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace anacin::proc {

/// Frame types of the worker pipe protocol (--isolate=process). Wire
/// format of one frame: u32 little-endian payload length, one type byte,
/// then the payload (JSON text for everything but heartbeats, which are
/// empty). Heartbeat frames are tiny (< PIPE_BUF), so the child's
/// heartbeat thread can interleave them with result frames under a write
/// mutex without tearing.
enum class FrameType : std::uint8_t {
  kRequest = 1,    // parent -> child: one work unit (JSON)
  kResult = 2,     // child -> parent: unit succeeded (JSON)
  kFail = 3,       // child -> parent: unit threw (JSON {kind, error})
  kHeartbeat = 4,  // child -> parent: still alive (empty payload)
};

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::string payload;
};

/// Refuse to allocate for absurd lengths — a torn/corrupt header reads as
/// garbage, not a 4 GiB allocation.
constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/// Write one frame, retrying short writes and EINTR. Returns false when
/// the peer is gone (EPIPE with SIGPIPE ignored) or the fd is broken —
/// never throws, because a dead peer is an expected condition handled by
/// triage (parent) or shutdown (child).
bool write_frame(int fd, FrameType type, std::string_view payload);

/// Blocking read of one complete frame; nullopt on EOF, a torn frame
/// (peer died mid-write), or a malformed header.
std::optional<Frame> read_frame(int fd);

}  // namespace anacin::proc

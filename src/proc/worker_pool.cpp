#include "proc/worker_pool.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "obs/obs.hpp"
#include "proc/protocol.hpp"
#include "support/error.hpp"
#include "support/signals.hpp"

namespace anacin::proc {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Units one child serves before being recycled. RLIMIT_CPU is cumulative
/// over the child's lifetime, so the limit is provisioned for this many
/// units and the pool retires the worker before it can be misdiagnosed as
/// a per-unit CPU breach.
constexpr std::uint64_t kUnitsPerWorker = 32;

/// How long destroy() waits for a child to exit on stdin EOF before
/// escalating to SIGKILL.
constexpr int kShutdownGraceMs = 2000;

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Last ~4 KiB of the child's captured stderr (an unlinked temp file the
/// parent keeps a descriptor to). The file accumulates over a reused
/// worker's lifetime, so the tail reflects its most recent output.
std::string read_stderr_tail(int fd) {
  if (fd < 0) return {};
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size <= 0) return {};
  constexpr off_t kTailBytes = 4096;
  const off_t offset = size > kTailBytes ? size - kTailBytes : 0;
  std::string tail(static_cast<std::size_t>(size - offset), '\0');
  const ssize_t got = ::pread(fd, tail.data(), tail.size(), offset);
  if (got <= 0) return {};
  tail.resize(static_cast<std::size_t>(got));
  // Strip trailing newline noise; keep the content verbatim otherwise.
  while (!tail.empty() && (tail.back() == '\n' || tail.back() == '\r')) {
    tail.pop_back();
  }
  return tail;
}

}  // namespace

IsolationMode isolation_mode_from_name(const std::string& name) {
  if (name == "none") return IsolationMode::kNone;
  if (name == "process") return IsolationMode::kProcess;
  throw ConfigError("unknown --isolate mode '" + name +
                    "' (expected none or process)");
}

WorkerPool::WorkerPool(WorkerPoolConfig config) : config_(std::move(config)) {
  ANACIN_CHECK(!config_.worker_exe.empty(), "worker pool needs an executable");
  ANACIN_CHECK(!config_.store_dir.empty(),
               "worker pool needs a shared artifact-store root");
  ANACIN_CHECK(config_.heartbeat_interval_ms > 0.0,
               "heartbeat interval must be positive");
  // A child can die between the liveness check and our write; without
  // this the resulting EPIPE would kill the whole campaign instead of
  // being triaged. Process-wide and idempotent.
  ::signal(SIGPIPE, SIG_IGN);
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();

  // No execute() may be running at destruction, so in_flight_ should be
  // empty — but a child leak is the one failure mode this subsystem must
  // never have, so reap defensively anyway.
  std::vector<int> strays;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [pid, flight] : in_flight_) strays.push_back(pid);
    in_flight_.clear();
  }
  for (const int pid : strays) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
  }
  std::vector<std::unique_ptr<Worker>> idle;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    idle.swap(idle_);
  }
  for (auto& worker : idle) destroy(std::move(worker));
}

std::vector<int> WorkerPool::live_pids() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> pids;
  for (const auto& worker : idle_) pids.push_back(worker->pid);
  for (const auto& [pid, flight] : in_flight_) pids.push_back(pid);
  return pids;
}

std::unique_ptr<WorkerPool::Worker> WorkerPool::spawn_worker() {
  // Everything the child touches between fork and exec is prepared up
  // front: with pool threads live, the child may only make
  // async-signal-safe calls (no allocation — another thread could hold
  // the malloc lock at fork time).
  char heartbeat_text[32];
  std::snprintf(heartbeat_text, sizeof(heartbeat_text), "%.3f",
                config_.heartbeat_interval_ms);
  std::string exe = config_.worker_exe;
  std::string store_flag = "--store";
  std::string store_dir = config_.store_dir;
  std::string command = "__worker";
  std::string heartbeat_flag = "--heartbeat-ms";
  std::array<char*, 7> argv = {exe.data(),
                               store_flag.data(),
                               store_dir.data(),
                               command.data(),
                               heartbeat_flag.data(),
                               heartbeat_text,
                               nullptr};

  // Cumulative CPU budget for a worker's whole life (see kUnitsPerWorker).
  rlim_t cpu_seconds = 0;
  if (config_.run_deadline_ms > 0.0) {
    const double per_unit_s = std::ceil(2.0 * config_.run_deadline_ms / 1000.0);
    cpu_seconds = static_cast<rlim_t>(per_unit_s) * kUnitsPerWorker + 5;
  }

  int request_pipe[2];
  int response_pipe[2];
  // O_CLOEXEC on every parent-held end: without it, later-spawned workers
  // would inherit this worker's pipe fds and keep them open after it
  // crashes, so the parent's read would never see EOF.
  ANACIN_CHECK(::pipe2(request_pipe, O_CLOEXEC) == 0,
               "pipe2 failed: " << std::strerror(errno));
  ANACIN_CHECK(::pipe2(response_pipe, O_CLOEXEC) == 0,
               "pipe2 failed: " << std::strerror(errno));

  std::string stderr_template =
      (std::filesystem::temp_directory_path() / "anacin-worker-stderr-XXXXXX")
          .string();
  const int stderr_fd = ::mkstemp(stderr_template.data());
  ANACIN_CHECK(stderr_fd >= 0,
               "mkstemp failed: " << std::strerror(errno));
  ::unlink(stderr_template.c_str());
  ::fcntl(stderr_fd, F_SETFD, FD_CLOEXEC);

  const pid_t parent_pid = ::getpid();
  const pid_t pid = ::fork();
  ANACIN_CHECK(pid >= 0, "fork failed: " << std::strerror(errno));
  if (pid == 0) {
    // Child: async-signal-safe calls only until execv.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    // The parent could have died before prctl armed; its children get
    // reparented, so getppid no longer matching means exactly that.
    if (::getppid() != parent_pid) ::_exit(125);
    ::dup2(request_pipe[0], STDIN_FILENO);
    ::dup2(response_pipe[1], STDOUT_FILENO);
    ::dup2(stderr_fd, STDERR_FILENO);
    if (cpu_seconds > 0) {
      const rlimit limit{cpu_seconds, cpu_seconds + 2};
      ::setrlimit(RLIMIT_CPU, &limit);
    }
    if (config_.mem_limit_bytes > 0) {
      const rlimit limit{config_.mem_limit_bytes, config_.mem_limit_bytes};
      ::setrlimit(RLIMIT_AS, &limit);
    }
    if (config_.fsize_limit_bytes > 0) {
      const rlimit limit{config_.fsize_limit_bytes,
                         config_.fsize_limit_bytes};
      ::setrlimit(RLIMIT_FSIZE, &limit);
    }
    ::execv(argv[0], argv.data());
    ::_exit(127);  // exec failed; triaged as a crash by the parent
  }

  ::close(request_pipe[0]);
  ::close(response_pipe[1]);
  auto worker = std::make_unique<Worker>();
  worker->pid = pid;
  worker->to_child = request_pipe[1];
  worker->from_child = response_pipe[0];
  worker->stderr_file = stderr_fd;
  obs::counter("proc.workers_spawned").add(1);
  return worker;
}

std::unique_ptr<WorkerPool::Worker> WorkerPool::checkout() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!idle_.empty()) {
      auto worker = std::move(idle_.back());
      idle_.pop_back();
      return worker;
    }
  }
  return spawn_worker();
}

void WorkerPool::checkin(std::unique_ptr<Worker> worker) {
  if (worker->units_served >= kUnitsPerWorker) {
    obs::counter("proc.workers_recycled").add(1);
    destroy(std::move(worker));
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!stopping_) {
      idle_.push_back(std::move(worker));
      return;
    }
  }
  // Destructor already drained idle_; don't repark behind its back.
  destroy(std::move(worker));
}

void WorkerPool::destroy(std::unique_ptr<Worker> worker) {
  if (!worker) return;
  // EOF on stdin is the clean-shutdown signal.
  close_fd(worker->to_child);
  bool reaped = false;
  for (int waited_ms = 0; waited_ms < kShutdownGraceMs; waited_ms += 10) {
    if (::waitpid(worker->pid, nullptr, WNOHANG) != 0) {
      reaped = true;
      break;
    }
    ::usleep(10'000);
  }
  if (!reaped) {
    ::kill(worker->pid, SIGKILL);
    ::waitpid(worker->pid, nullptr, 0);
  }
  close_fd(worker->from_child);
  close_fd(worker->stderr_file);
}

void WorkerPool::watchdog_loop() {
  static obs::Counter& deadline_kills =
      obs::counter("proc.watchdog_deadline_kills");
  static obs::Counter& stall_kills = obs::counter("proc.watchdog_stall_kills");
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    watchdog_cv_.wait_for(lock, std::chrono::milliseconds(20));
    if (stopping_) break;
    const auto now = Clock::now();
    for (auto& [pid, flight] : in_flight_) {
      if (flight.kill_reason != KillReason::kNone) continue;
      if (flight.has_deadline && now >= flight.deadline_at) {
        flight.kill_reason = KillReason::kDeadline;
        flight.killed_after_ms = ms_between(flight.started, now);
        deadline_kills.add(1);
        ::kill(pid, SIGKILL);
      } else if (config_.heartbeat_timeout_ms > 0.0 &&
                 ms_between(flight.last_heartbeat, now) >
                     config_.heartbeat_timeout_ms) {
        flight.kill_reason = KillReason::kHeartbeat;
        flight.killed_after_ms = ms_between(flight.started, now);
        stall_kills.add(1);
        ::kill(pid, SIGKILL);
      }
    }
  }
}

json::Value WorkerPool::execute(const std::string& unit_id,
                                const json::Value& request) {
  obs::counter("proc.units_dispatched").add(1);
  auto worker = checkout();
  const int pid = worker->pid;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    InFlight flight;
    flight.unit = unit_id;
    flight.started = Clock::now();
    flight.last_heartbeat = flight.started;
    if (config_.run_deadline_ms > 0.0) {
      flight.has_deadline = true;
      flight.deadline_at =
          flight.started + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   config_.run_deadline_ms));
    }
    in_flight_[pid] = std::move(flight);
  }

  ReadResult reply;
  if (write_frame(worker->to_child, FrameType::kRequest, request.dump())) {
    static obs::Counter& heartbeats = obs::counter("proc.heartbeats");
    while ((reply = read_frame(worker->from_child))) {
      if (reply.frame.type != FrameType::kHeartbeat) break;
      heartbeats.add(1);
      const std::lock_guard<std::mutex> lock(mutex_);
      if (const auto it = in_flight_.find(pid); it != in_flight_.end()) {
        it->second.last_heartbeat = Clock::now();
      }
    }
    // Typed read status is the triage pre-signal: a clean EOF means the
    // child is simply gone (post-mortem below says why), while a torn
    // frame or oversized length means the stream itself broke — count it
    // so protocol regressions surface in metrics, then fall through to
    // the same post-mortem (the child is untrustworthy either way).
    if (reply.status == ReadStatus::kError) {
      obs::counter("proc.protocol_errors").add(1);
    }
  }

  if (reply &&
      (reply.frame.type == FrameType::kResult ||
       reply.frame.type == FrameType::kFail)) {
    bool killed = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = in_flight_.find(pid);
      // A complete answer racing the watchdog's SIGKILL: the watchdog
      // already ruled the unit over budget, so honor the kill — accepting
      // the result would also repark a dying child.
      killed = it != in_flight_.end() &&
               it->second.kill_reason != KillReason::kNone;
    }
    if (!killed) {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        in_flight_.erase(pid);
      }
      json::Value payload;
      try {
        payload = json::parse(reply.frame.payload);
      } catch (const std::exception& error) {
        worker->units_served = kUnitsPerWorker;  // don't trust it again
        checkin(std::move(worker));
        throw PermanentError("worker child for unit '" + unit_id +
                             "' sent a malformed reply: " + error.what());
      }
      if (reply.frame.type == FrameType::kResult) {
        ++worker->units_served;
        checkin(std::move(worker));
        return payload;
      }
      // The child caught the failure and reported it cleanly; it is still
      // healthy, only the unit failed.
      obs::counter("proc.child_failures").add(1);
      ++worker->units_served;
      const json::Value* kind = payload.find("kind");
      const json::Value* message = payload.find("error");
      const std::string what =
          "worker child for unit '" + unit_id + "' reported: " +
          (message != nullptr ? message->as_string() : reply.frame.payload);
      checkin(std::move(worker));
      if (kind != nullptr && kind->as_string() == "transient") {
        throw TransientError(what);
      }
      throw PermanentError(what);
    }
  }

  // The pipe broke without an answer (child crashed, was killed by the
  // watchdog, or never survived exec). Post-mortem time.
  triage_and_throw(unit_id, std::move(worker));
}

void WorkerPool::triage_and_throw(const std::string& unit_id,
                                  std::unique_ptr<Worker> worker) {
  InFlight flight;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = in_flight_.find(worker->pid);
        it != in_flight_.end()) {
      flight = std::move(it->second);
      in_flight_.erase(it);
    }
  }
  // Guarantee the blocking reap below terminates even for an exotic state
  // (e.g. the child stopped itself); a SIGKILL to an already-dead child is
  // a no-op, and the pid cannot be recycled before we wait on it.
  ::kill(worker->pid, SIGKILL);
  int status = 0;
  rusage usage{};
  ::wait4(worker->pid, &status, 0, &usage);
  const auto now = Clock::now();

  UnitTriage triage;
  triage.peak_rss_kib = usage.ru_maxrss;
  triage.heartbeat_age_ms = ms_between(flight.last_heartbeat, now);
  triage.stderr_tail = read_stderr_tail(worker->stderr_file);
  close_fd(worker->to_child);
  close_fd(worker->from_child);
  close_fd(worker->stderr_file);

  std::ostringstream what;
  what << "worker child for unit '" << unit_id << "' ";
  if (flight.kill_reason == KillReason::kDeadline) {
    triage.disposition = "deadline";
    what << "exceeded its " << config_.run_deadline_ms
         << " ms deadline; the watchdog SIGKILLed it after "
         << flight.killed_after_ms << " ms (last heartbeat "
         << triage.heartbeat_age_ms << " ms before reap)";
    throw WorkerDeadlineError(what.str(), std::move(triage));
  }
  if (flight.kill_reason == KillReason::kHeartbeat) {
    triage.disposition = "heartbeat";
    what << "stopped heartbeating (" << triage.heartbeat_age_ms
         << " ms since the last heartbeat, timeout "
         << config_.heartbeat_timeout_ms
         << " ms); the watchdog SIGKILLed it";
    throw WorkerDeadlineError(what.str(), std::move(triage));
  }
  if (WIFSIGNALED(status)) {
    const int signo = WTERMSIG(status);
    triage.signal = support::signal_name(signo);
    if (signo == SIGXCPU || signo == SIGXFSZ) {
      triage.disposition = "rlimit";
      obs::counter("proc.rlimit_breaches").add(1);
      what << "breached a resource limit and died with " << triage.signal
           << " (peak RSS " << triage.peak_rss_kib << " KiB)";
      throw ResourceLimitError(what.str(), std::move(triage));
    }
    triage.disposition = "crash";
    obs::counter("proc.worker_crashes").add(1);
    what << "died with " << triage.signal << " (peak RSS "
         << triage.peak_rss_kib << " KiB)";
    if (!triage.stderr_tail.empty()) {
      what << "; stderr tail: " << triage.stderr_tail;
    }
    throw WorkerCrashError(what.str(), std::move(triage));
  }
  triage.disposition = "crash";
  triage.exit_status = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  obs::counter("proc.worker_crashes").add(1);
  what << "exited with status " << triage.exit_status
       << " without reporting a result";
  if (triage.exit_status == 127) what << " (exec of the worker failed)";
  if (!triage.stderr_tail.empty()) {
    what << "; stderr tail: " << triage.stderr_tail;
  }
  throw WorkerCrashError(what.str(), std::move(triage));
}

}  // namespace anacin::proc

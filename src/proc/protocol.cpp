#include "proc/protocol.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "support/crc32c.hpp"

namespace anacin::proc {

namespace {

using Clock = std::chrono::steady_clock;

bool write_all(int fd, const void* data, std::size_t size) {
  const char* cursor = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t written = ::write(fd, cursor, size);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    cursor += written;
    size -= static_cast<std::size_t>(written);
  }
  return true;
}

/// How a timed exact-size read ended.
enum class FillStatus { kDone, kEof, kTimeout, kError };

/// Read exactly `size` bytes, honoring an optional deadline. `got` reports
/// how many bytes arrived before a short outcome — the caller uses it to
/// tell "clean EOF at a boundary" (got == 0) from "torn mid-field".
FillStatus read_exact(int fd, void* data, std::size_t size,
                      const Clock::time_point* deadline, std::size_t* got) {
  char* cursor = static_cast<char*>(data);
  *got = 0;
  while (*got < size) {
    if (deadline != nullptr) {
      const auto now = Clock::now();
      if (now >= *deadline) return FillStatus::kTimeout;
      const auto budget = std::chrono::duration_cast<std::chrono::milliseconds>(
          *deadline - now);
      pollfd pfd{fd, POLLIN, 0};
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(budget.count()) + 1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return FillStatus::kError;
      }
      if (ready == 0) return FillStatus::kTimeout;
    }
    const ssize_t n = ::read(fd, cursor + *got, size - *got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return FillStatus::kError;
    }
    if (n == 0) return FillStatus::kEof;
    *got += static_cast<std::size_t>(n);
  }
  return FillStatus::kDone;
}

void store_u32le(char* out, std::uint32_t value) {
  out[0] = static_cast<char>(value & 0xff);
  out[1] = static_cast<char>((value >> 8) & 0xff);
  out[2] = static_cast<char>((value >> 16) & 0xff);
  out[3] = static_cast<char>((value >> 24) & 0xff);
}

std::uint32_t load_u32le(const unsigned char* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

}  // namespace

bool frame_type_is_known(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(FrameType::kRequest) &&
         type <= static_cast<std::uint8_t>(FrameType::kShutdown);
}

std::vector<char> encode_frame(FrameType type, std::string_view payload,
                               std::uint16_t version) {
  if (payload.size() > kMaxFramePayload) return {};
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  const std::size_t overhead = frame_overhead(version);
  std::vector<char> buffer(overhead + payload.size());
  store_u32le(buffer.data(), length);
  buffer[4] = static_cast<char>(type);
  if (!payload.empty()) {  // empty view's data() may be null; memcpy UB
    std::memcpy(buffer.data() + 5, payload.data(), payload.size());
  }
  if (version >= kProtocolV2) {
    // The trailer covers header AND payload: a flipped length or type byte
    // is caught exactly like a flipped payload byte.
    const std::uint32_t crc =
        support::crc32c(buffer.data(), 5 + payload.size());
    store_u32le(buffer.data() + 5 + payload.size(), crc);
  }
  return buffer;
}

bool write_frame(int fd, FrameType type, std::string_view payload,
                 std::uint16_t version) {
  // One buffered write per frame: heartbeat frames (9 bytes in v2) stay
  // well under PIPE_BUF, so concurrent writers serialized by a mutex can
  // never interleave a heartbeat into the middle of a result frame.
  const std::vector<char> buffer = encode_frame(type, payload, version);
  if (buffer.empty()) return false;  // oversized payload
  return write_all(fd, buffer.data(), buffer.size());
}

ReadResult read_frame(int fd, int timeout_ms, std::uint16_t version) {
  ReadResult result;
  Clock::time_point deadline_storage;
  const Clock::time_point* deadline = nullptr;
  if (timeout_ms >= 0) {
    deadline_storage = Clock::now() + std::chrono::milliseconds(timeout_ms);
    deadline = &deadline_storage;
  }

  unsigned char header[5];
  std::size_t got = 0;
  switch (read_exact(fd, header, sizeof(header), deadline, &got)) {
    case FillStatus::kDone:
      break;
    case FillStatus::kEof:
      if (got == 0) {
        result.status = ReadStatus::kEof;  // clean close at a boundary
      } else {
        result.status = ReadStatus::kError;
        result.error = "truncated frame header (" + std::to_string(got) +
                       " of 5 bytes before EOF)";
      }
      return result;
    case FillStatus::kTimeout:
      result.status = ReadStatus::kTimeout;
      return result;
    case FillStatus::kError:
      result.status = ReadStatus::kError;
      result.error = std::string("read failed: ") + std::strerror(errno);
      return result;
  }

  const std::uint32_t length = load_u32le(header);
  // Both rejections happen before the payload allocation: corrupt headers
  // must not translate into multi-GiB resize attempts.
  if (length > kMaxFramePayload) {
    result.status = ReadStatus::kError;
    result.error = "frame payload length " + std::to_string(length) +
                   " exceeds the " + std::to_string(kMaxFramePayload) +
                   "-byte limit";
    return result;
  }
  if (!frame_type_is_known(header[4])) {
    result.status = ReadStatus::kError;
    result.error =
        "unknown frame type " + std::to_string(static_cast<int>(header[4]));
    return result;
  }

  result.frame.type = static_cast<FrameType>(header[4]);
  // Payload and (at v2) trailer are read in ONE pass: a separate 4-byte
  // trailer read would cost an extra poll+read syscall pair per frame,
  // which dominates the CRC itself on small loopback round trips. The
  // buffer is over-allocated by the trailer and shrunk before return.
  const std::size_t trailer_size = version >= kProtocolV2 ? 4u : 0u;
  result.frame.payload.resize(length + trailer_size);
  if (length + trailer_size > 0) {
    switch (read_exact(fd, result.frame.payload.data(), length + trailer_size,
                       deadline, &got)) {
      case FillStatus::kDone:
        break;
      case FillStatus::kEof:
        result.status = ReadStatus::kError;
        if (got < length) {
          result.error = "truncated frame payload (" + std::to_string(got) +
                         " of " + std::to_string(length) +
                         " bytes before EOF)";
        } else {
          result.error = "truncated frame trailer (" +
                         std::to_string(got - length) +
                         " of 4 bytes before EOF)";
        }
        return result;
      case FillStatus::kTimeout:
        result.status = ReadStatus::kTimeout;
        return result;
      case FillStatus::kError:
        result.status = ReadStatus::kError;
        result.error = std::string("read failed: ") + std::strerror(errno);
        return result;
    }
  }

  if (version >= kProtocolV2) {
    const std::uint32_t stored = load_u32le(reinterpret_cast<unsigned char*>(
        result.frame.payload.data() + length));
    std::uint32_t crc = support::crc32c(header, sizeof(header));
    crc = support::crc32c(result.frame.payload.data(), length, crc);
    result.frame.payload.resize(length);  // drop the trailer bytes
    if (crc != stored) {
      // The stream stays aligned (length was consistent), so the caller
      // may keep reading — but this frame's bytes are untrustworthy.
      result.frame.payload.clear();
      result.status = ReadStatus::kCorrupt;
      result.error = "frame CRC32C mismatch (stored " +
                     std::to_string(stored) + ", computed " +
                     std::to_string(crc) + ")";
      return result;
    }
  }

  result.status = ReadStatus::kFrame;
  return result;
}

Heartbeater::Heartbeater(int fd, double interval_ms, std::mutex& write_mutex,
                         std::uint16_t version)
    : beat_([fd, &write_mutex, version] {
        const std::lock_guard<std::mutex> lock(write_mutex);
        // A failed write means the peer is gone; PDEATHSIG (pipe workers)
        // or the serve loop's own EOF handling (agents) takes it from
        // here.
        write_frame(fd, FrameType::kHeartbeat, {}, version);
      }),
      interval_(interval_ms) {
  thread_ = std::thread([this] { loop(); });
}

Heartbeater::Heartbeater(std::function<void()> beat, double interval_ms)
    : beat_(std::move(beat)), interval_(interval_ms) {
  thread_ = std::thread([this] { loop(); });
}

Heartbeater::~Heartbeater() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void Heartbeater::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (cv_.wait_for(lock, interval_, [this] { return stop_; })) break;
    lock.unlock();
    beat_();
    lock.lock();
  }
}

}  // namespace anacin::proc

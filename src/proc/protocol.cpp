#include "proc/protocol.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace anacin::proc {

namespace {

bool write_all(int fd, const void* data, std::size_t size) {
  const char* cursor = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t written = ::write(fd, cursor, size);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    cursor += written;
    size -= static_cast<std::size_t>(written);
  }
  return true;
}

/// Read exactly `size` bytes; false on EOF or error.
bool read_all(int fd, void* data, std::size_t size) {
  char* cursor = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t got = ::read(fd, cursor, size);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // EOF
    cursor += got;
    size -= static_cast<std::size_t>(got);
  }
  return true;
}

}  // namespace

bool write_frame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) return false;
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  // One buffered write per frame: heartbeat frames (5 bytes) stay well
  // under PIPE_BUF, so concurrent writers serialized by a mutex can never
  // interleave a heartbeat into the middle of a result frame.
  std::vector<char> buffer(5 + payload.size());
  buffer[0] = static_cast<char>(length & 0xff);
  buffer[1] = static_cast<char>((length >> 8) & 0xff);
  buffer[2] = static_cast<char>((length >> 16) & 0xff);
  buffer[3] = static_cast<char>((length >> 24) & 0xff);
  buffer[4] = static_cast<char>(type);
  std::memcpy(buffer.data() + 5, payload.data(), payload.size());
  return write_all(fd, buffer.data(), buffer.size());
}

std::optional<Frame> read_frame(int fd) {
  unsigned char header[5];
  if (!read_all(fd, header, sizeof(header))) return std::nullopt;
  const std::uint32_t length =
      static_cast<std::uint32_t>(header[0]) |
      (static_cast<std::uint32_t>(header[1]) << 8) |
      (static_cast<std::uint32_t>(header[2]) << 16) |
      (static_cast<std::uint32_t>(header[3]) << 24);
  if (length > kMaxFramePayload) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(header[4]);
  frame.payload.resize(length);
  if (length > 0 && !read_all(fd, frame.payload.data(), length)) {
    return std::nullopt;
  }
  return frame;
}

}  // namespace anacin::proc

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "proc/executor.hpp"
#include "support/json.hpp"

namespace anacin::proc {

/// Which sandbox campaign work units execute in (--isolate).
enum class IsolationMode { kNone, kProcess };
/// Parse an --isolate value ("none" | "process"); throws ConfigError.
IsolationMode isolation_mode_from_name(const std::string& name);

struct WorkerPoolConfig {
  /// Executable serving the `__worker` command — normally the anacin
  /// binary itself (the CLI resolves /proc/self/exe; tests and unusual
  /// launchers override via ANACIN_WORKER_EXE).
  std::string worker_exe;
  /// Artifact-store root shared with the children. Results travel through
  /// the store, not the pipe, which is what makes isolated and in-process
  /// campaigns bit-identical.
  std::string store_dir;
  /// Preemptive wall-clock budget per dispatched unit (0 = none). The
  /// watchdog SIGKILLs a child past its deadline; note the budget covers
  /// child spawn too when a fresh worker is forked for the unit.
  double run_deadline_ms = 0.0;
  /// How often children emit heartbeat frames while executing a unit.
  double heartbeat_interval_ms = 50.0;
  /// Kill a child whose last heartbeat is older than this (0 disables the
  /// stall detector; deadline enforcement is independent of it).
  double heartbeat_timeout_ms = 10'000.0;
  /// RLIMIT_AS per child, bytes (0 = unlimited — the default, because
  /// sanitizer builds reserve terabytes of shadow address space).
  std::uint64_t mem_limit_bytes = 0;
  /// RLIMIT_FSIZE per child, bytes (0 = unlimited). Bounds a runaway
  /// unit's store writes.
  std::uint64_t fsize_limit_bytes = 1ull << 30;
};

/// A pool of fork/exec'd sandboxed worker children executing campaign
/// work units behind a length-prefixed pipe protocol (proc/protocol.hpp).
///
/// Each concurrent execute() caller gets its own child (healthy children
/// are reused across units). A watchdog thread preemptively enforces the
/// per-unit deadline and the heartbeat-stall timeout with SIGKILL — this
/// is the piece the in-process supervisor cannot provide, since it only
/// detects deadline misses after the unit returns. Children that die are
/// triaged (kill reason, exit status vs. signal, peak RSS, stderr tail,
/// heartbeat age) into the typed errors of support/error.hpp, so retries,
/// --keep-going quarantine, and the resilience report compose unchanged.
///
/// Children cannot outlive the pool: the destructor drains and reaps them,
/// and each child arms prctl(PR_SET_PDEATHSIG, SIGKILL) against a parent
/// that dies without running destructors.
class WorkerPool : public UnitExecutor {
 public:
  explicit WorkerPool(WorkerPoolConfig config);
  ~WorkerPool() override;

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  const WorkerPoolConfig& config() const { return config_; }

  /// Execute one work unit in a sandboxed child: dispatch the request,
  /// block until the child answers or dies, triage on death. Returns the
  /// child's result payload; throws the triaged typed error on failure
  /// (WorkerCrashError / ResourceLimitError / WorkerDeadlineError for
  /// child deaths, TransientError / PermanentError for failures the child
  /// reported cleanly). Thread safe.
  json::Value execute(const std::string& unit_id,
                      const json::Value& request) override;

  /// Pids of every currently live child (tests assert the set is empty
  /// after destruction).
  std::vector<int> live_pids() const;

 private:
  struct Worker {
    int pid = -1;
    int to_child = -1;     // write end: request frames
    int from_child = -1;   // read end: heartbeat/result/fail frames
    int stderr_file = -1;  // unlinked temp file capturing the child's stderr
    std::uint64_t units_served = 0;
  };

  enum class KillReason { kNone, kDeadline, kHeartbeat };

  struct InFlight {
    std::string unit;
    std::chrono::steady_clock::time_point started;
    std::chrono::steady_clock::time_point deadline_at;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point last_heartbeat;
    KillReason kill_reason = KillReason::kNone;
    double killed_after_ms = 0.0;
  };

  std::unique_ptr<Worker> spawn_worker();
  std::unique_ptr<Worker> checkout();
  void checkin(std::unique_ptr<Worker> worker);
  /// Shut one worker down: close its stdin (clean EOF exit), reap with a
  /// SIGKILL fallback, close fds.
  void destroy(std::unique_ptr<Worker> worker);
  void watchdog_loop();
  [[noreturn]] void triage_and_throw(const std::string& unit_id,
                                     std::unique_ptr<Worker> worker);

  WorkerPoolConfig config_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Worker>> idle_;
  /// Dispatched units by child pid; the watchdog scans this table.
  std::map<int, InFlight> in_flight_;
  bool stopping_ = false;
  std::condition_variable watchdog_cv_;
  std::thread watchdog_;
};

}  // namespace anacin::proc

#pragma once

/// Umbrella header: the public API of the ANACIN reproduction.
///
/// Layers (bottom to top):
///  - sim:      deterministic discrete-event MPI runtime (Comm API)
///  - trace:    event records + callstack interning
///  - graph:    event graphs, Lamport clocks, logical-time slicing
///  - kernels:  graph kernels (WL subtree et al.) and kernel distances
///  - patterns: packaged mini-applications
///  - replay:   record-and-replay of wildcard matching
///  - analysis: statistics, KDE, ND measurement, root-cause attribution
///  - store:    content-addressed artifact store (incremental execution)
///  - viz:      SVG + ASCII visualisations
///  - core:     campaign orchestration and reporting

#include "analysis/clustering.hpp"
#include "analysis/kde.hpp"
#include "analysis/nd_measurement.hpp"
#include "analysis/resampling.hpp"
#include "analysis/root_cause.hpp"
#include "analysis/stats.hpp"
#include "core/campaign.hpp"
#include "core/experiments.hpp"
#include "core/html_report.hpp"
#include "core/report.hpp"
#include "graph/event_graph.hpp"
#include "graph/metrics.hpp"
#include "graph/slicing.hpp"
#include "kernels/distance_matrix.hpp"
#include "kernels/kernel.hpp"
#include "patterns/pattern.hpp"
#include "replay/replay.hpp"
#include "sim/simulator.hpp"
#include "store/codec.hpp"
#include "store/store.hpp"
#include "support/cli.hpp"
#include "support/string_util.hpp"
#include "support/thread_pool.hpp"
#include "viz/ascii.hpp"
#include "viz/event_graph_render.hpp"
#include "viz/heatmap.hpp"
#include "viz/plots.hpp"

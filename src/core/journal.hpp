#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/json.hpp"

namespace anacin::core {

/// Crash-consistent write-ahead log of completed campaign work units.
///
/// A sweep records one entry per finished sweep point, keyed by the
/// point's content digest (the same hash family the artifact store uses
/// for run keys). `anacin sweep --resume` then replays journaled points
/// from the log instead of recomputing them, and the artifact store
/// covers the partially finished point — together a SIGKILLed sweep
/// resumes with zero redundant simulations.
///
/// Persistence follows the store's atomic-rename discipline: every
/// `record()` rewrites the whole journal through
/// support::atomic_write_file, so a crash can never leave a half-written
/// journal in place. The on-disk format is still line-framed JSONL with a
/// per-record checksum, and the loader is tolerant: a truncated or
/// corrupt tail (e.g. a journal salvaged from a dying disk) silently ends
/// the log at the last intact record instead of failing the resume.
///
/// Line format (one JSON object per line):
///   {"c":"<digest>","k":"<unit key>","p":<payload>}
/// where c is the content digest of the canonical serialization of
/// {"k":...,"p":...}. The first line is a header record (k = "@header")
/// whose payload carries the schema tag and the campaign-set key; opening
/// a journal recorded for a different campaign configuration throws
/// ConfigError rather than silently mixing results.
class CampaignJournal {
public:
  /// Opens (and tolerantly loads) the journal at `path`. `campaign_key`
  /// identifies the sweep configuration; a mismatch with an existing
  /// journal's header is a ConfigError.
  CampaignJournal(std::string path, std::string campaign_key);

  const std::string& path() const { return path_; }

  /// Completed units salvaged from disk plus those recorded this process.
  std::size_t size() const { return records_.size(); }

  /// Lines dropped by the tolerant loader (corrupt/truncated tail).
  std::size_t dropped_lines() const { return dropped_lines_; }

  /// Payload of a completed unit, or nullptr when the unit is not
  /// journaled (i.e. still needs to run).
  const json::Value* lookup(const std::string& unit_key) const;

  /// Durably append a completed unit. The journal is flushed to disk
  /// (atomic rename) before this returns — once record() returns, a crash
  /// cannot lose the unit. Re-recording an existing key overwrites it.
  void record(const std::string& unit_key, json::Value payload);

private:
  void load();
  void persist() const;

  std::string path_;
  std::string campaign_key_;
  std::vector<std::pair<std::string, json::Value>> records_;
  std::unordered_map<std::string, std::size_t> by_key_;
  std::size_t dropped_lines_ = 0;
};

}  // namespace anacin::core

#include "core/journal.hpp"

#include <fstream>
#include <sstream>

#include "obs/obs.hpp"
#include "store/hash.hpp"
#include "support/error.hpp"
#include "support/fs.hpp"

namespace anacin::core {

namespace {

constexpr const char kHeaderKey[] = "@header";
constexpr const char kSchema[] = "anacin-journal-1";

/// Checksum binding a record's key and payload together; canonical
/// serialization makes it stable across member order and processes.
std::string record_checksum(const std::string& key,
                            const json::Value& payload) {
  json::Value body = json::Value::object();
  body.set("k", key);
  body.set("p", payload);
  return store::digest_string(body.dump_canonical()).to_hex();
}

std::string render_line(const std::string& key, const json::Value& payload) {
  json::Value line = json::Value::object();
  line.set("c", record_checksum(key, payload));
  line.set("k", key);
  line.set("p", payload);
  return line.dump();
}

}  // namespace

CampaignJournal::CampaignJournal(std::string path, std::string campaign_key)
    : path_(std::move(path)), campaign_key_(std::move(campaign_key)) {
  ANACIN_CHECK(!path_.empty(), "journal needs a path");
  load();
}

void CampaignJournal::load() {
  std::ifstream in(path_);
  if (!in.good()) return;  // no journal yet — fresh campaign

  bool header_seen = false;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::string key;
    json::Value payload;
    try {
      const json::Value doc = json::parse(line);
      key = doc.at("k").as_string();
      payload = doc.at("p");
      if (doc.at("c").as_string() != record_checksum(key, payload)) {
        throw ParseError("journal record checksum mismatch");
      }
    } catch (const Error&) {
      // Corrupt or truncated record: everything from here on is
      // untrustworthy (append-ordered log), so end the journal at the
      // last intact record. The dropped units simply re-run.
      std::size_t remaining = 1;
      while (std::getline(in, line)) ++remaining;
      dropped_lines_ = remaining;
      obs::counter("resilience.journal_lines_dropped").add(remaining);
      break;
    }
    if (line_number == 1) {
      if (key != kHeaderKey) {
        throw ConfigError("'" + path_ + "' is not a campaign journal");
      }
      const std::string recorded_campaign =
          payload.at("campaign").as_string();
      if (payload.at("schema").as_string() != kSchema ||
          recorded_campaign != campaign_key_) {
        throw ConfigError(
            "journal '" + path_ +
            "' was recorded for a different campaign configuration (" +
            recorded_campaign + " != " + campaign_key_ +
            ") — pass a different --journal path or delete it");
      }
      header_seen = true;
      continue;
    }
    if (!header_seen) {
      throw ConfigError("'" + path_ + "' is missing its journal header");
    }
    if (const auto it = by_key_.find(key); it != by_key_.end()) {
      records_[it->second].second = std::move(payload);
    } else {
      by_key_.emplace(key, records_.size());
      records_.emplace_back(key, std::move(payload));
    }
  }
  obs::counter("resilience.journal_units_loaded").add(records_.size());
}

const json::Value* CampaignJournal::lookup(
    const std::string& unit_key) const {
  const auto it = by_key_.find(unit_key);
  return it == by_key_.end() ? nullptr : &records_[it->second].second;
}

void CampaignJournal::record(const std::string& unit_key,
                             json::Value payload) {
  if (const auto it = by_key_.find(unit_key); it != by_key_.end()) {
    records_[it->second].second = std::move(payload);
  } else {
    by_key_.emplace(unit_key, records_.size());
    records_.emplace_back(unit_key, std::move(payload));
  }
  persist();
  obs::counter("resilience.journal_units_recorded").add(1);
}

void CampaignJournal::persist() const {
  std::ostringstream out;
  json::Value header = json::Value::object();
  header.set("schema", kSchema);
  header.set("campaign", campaign_key_);
  out << render_line(kHeaderKey, header) << '\n';
  for (const auto& [key, payload] : records_) {
    out << render_line(key, payload) << '\n';
  }
  // Journal-class write: fsync'd at --durability=commit and above, and
  // deliberately fail-fast under disk faults — a journal that cannot
  // commit must stop the campaign (silently dropping completed points
  // would make --resume lie), unlike the store, which degrades.
  support::atomic_write_file(path_, out.str(), support::PathClass::kJournal);
}

}  // namespace anacin::core

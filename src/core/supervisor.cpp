#include "core/supervisor.hpp"

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "obs/obs.hpp"
#include "store/hash.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/string_util.hpp"

namespace anacin::core {

Supervisor::Supervisor(RetryPolicy policy, std::uint64_t campaign_seed,
                       FailureInjector injector)
    : policy_(policy),
      campaign_seed_(campaign_seed),
      injector_(std::move(injector)) {}

std::uint64_t Supervisor::backoff_us(const std::string& unit_id,
                                     int attempt) const {
  if (policy_.base_backoff_us == 0) return 0;
  // Exponential growth with deterministic jitter: the jitter stream is a
  // pure function of (campaign seed, unit id, attempt), so a re-run of the
  // same campaign with the same failure schedule backs off identically.
  const std::uint64_t unit_hash = store::digest_string(unit_id).lo;
  const std::uint64_t stream = hash_combine(
      hash_combine(mix64(campaign_seed_), unit_hash),
      static_cast<std::uint64_t>(attempt));
  const double jitter =
      0.5 + static_cast<double>(mix64(stream) >> 11) * 0x1.0p-53;
  const int exponent = attempt > 20 ? 20 : attempt - 1;
  const double scaled = static_cast<double>(policy_.base_backoff_us) *
                        static_cast<double>(1ull << exponent) * jitter;
  return static_cast<std::uint64_t>(scaled);
}

UnitReport Supervisor::run(const std::string& unit_id,
                           const std::function<void()>& work) const {
  static obs::Counter& units_counter = obs::counter("resilience.units");
  static obs::Counter& retries_counter = obs::counter("resilience.retries");
  static obs::Counter& transient_counter =
      obs::counter("resilience.transient_failures");
  static obs::Counter& permanent_counter =
      obs::counter("resilience.permanent_failures");
  static obs::Counter& deadline_counter =
      obs::counter("resilience.deadline_exceeded");
  units_counter.add(1);

  UnitReport report;
  const int max_attempts = 1 + (policy_.max_retries < 0 ? 0
                                                        : policy_.max_retries);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    report.attempts = attempt;
    try {
      // The injector runs inside the timed section so an injected hang
      // exercises the deadline path exactly like genuinely slow work.
      const auto start = std::chrono::steady_clock::now();
      injector_.on_attempt(unit_id, attempt);
      work();
      if (policy_.run_deadline_ms > 0.0) {
        const double elapsed_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (elapsed_ms > policy_.run_deadline_ms) {
          std::ostringstream os;
          os << "unit '" << unit_id << "' exceeded its deadline ("
             << elapsed_ms << " ms > " << policy_.run_deadline_ms << " ms)";
          throw DeadlineExceeded(os.str());
        }
      }
      report.ok = true;
      report.error.clear();
      return report;
    } catch (const TransientError& error) {
      // DeadlineExceeded lands here too (it is-a TransientError).
      transient_counter.add(1);
      if (dynamic_cast<const DeadlineExceeded*>(&error) != nullptr) {
        deadline_counter.add(1);
      }
      report.error = error.what();
      report.transient = true;
      if (const auto* triaged = dynamic_cast<const TriagedError*>(&error)) {
        report.triage = triaged->triage();
        report.has_triage = true;
      }
      if (attempt == max_attempts) return report;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++retries_;
      }
      retries_counter.add(1);
      const std::uint64_t sleep_us = backoff_us(unit_id, attempt);
      if (sleep_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      }
    } catch (const std::exception& error) {
      permanent_counter.add(1);
      report.error = error.what();
      report.transient = false;
      if (const auto* triaged =
              dynamic_cast<const TriagedError*>(&error)) {
        report.triage = triaged->triage();
        report.has_triage = true;
      }
      return report;
    }
  }
  return report;  // unreachable; loop always returns
}

std::uint64_t Supervisor::retries_performed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return retries_;
}

}  // namespace anacin::core

#pragma once

#include <string>
#include <vector>

namespace anacin::core {

/// Metadata index of every paper table/figure this repository reproduces:
/// the machine-readable version of DESIGN.md's experiment table. Each
/// entry names the bench binary that regenerates the item and the
/// qualitative shape the paper reports (which the bench asserts).
struct ExperimentInfo {
  std::string id;             // short handle, e.g. "fig5"
  std::string paper_item;     // e.g. "Fig. 5 (a/b)"
  std::string title;
  std::string workload;       // pattern + parameters, human-readable
  std::string bench_target;   // binary under build/bench/
  std::string expected_shape; // what "reproduced" means
  std::vector<std::string> artifacts;  // files under results/
};

const std::vector<ExperimentInfo>& paper_experiments();

/// nullptr when the id is unknown.
const ExperimentInfo* find_experiment(const std::string& id);

/// Aligned text index of all experiments (for `anacin figures`).
std::string render_experiment_index();

}  // namespace anacin::core

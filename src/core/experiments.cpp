#include "core/experiments.hpp"

#include <sstream>

#include "support/string_util.hpp"

namespace anacin::core {

const std::vector<ExperimentInfo>& paper_experiments() {
  static const std::vector<ExperimentInfo> experiments = {
      {"tab1", "Tables I & II", "course learning objectives & prerequisites",
       "static course metadata", "tab01_course_tables",
       "verbatim reproduction of both tables", {}},
      {"fig1", "Fig. 1", "example event graph, 3 MPI processes",
       "hand-built 3-rank send/recv scenario", "fig01_event_graph_example",
       "timeline with send/recv nodes, program-order and message edges",
       {"fig01_event_graph_example.svg"}},
      {"fig2", "Fig. 2", "message race event graph",
       "message_race, 4 ranks, 1 iteration", "fig02_message_race_graph",
       "ranks 1-3 each send one message into rank 0's wildcard receives",
       {"fig02_message_race.svg"}},
      {"fig3", "Fig. 3", "AMG 2013 event graph",
       "amg2013, 2 ranks, 1 iteration", "fig03_amg_graph",
       "two asynchronous exchange phases between the two ranks",
       {"fig03_amg2013.svg"}},
      {"fig4", "Fig. 4 (a/b)", "two non-deterministic runs differ",
       "message_race, 4 ranks, 100% ND, two seeds", "fig04_nd_two_runs",
       "same code + same inputs -> different receive orders",
       {"fig04a_run_a.svg", "fig04b_run_b.svg"}},
      {"fig5", "Fig. 5 (a/b)", "kernel distance vs number of processes",
       "unstructured_mesh, 32 vs 16 ranks, 100% ND, 20 runs",
       "fig05_process_scaling", "32-process median > 16-process median",
       {"fig05_process_scaling.svg"}},
      {"fig6", "Fig. 6 (a/b)", "kernel distance vs pattern iterations",
       "unstructured_mesh, 16 ranks, 2 vs 1 iterations, 100% ND, 20 runs",
       "fig06_iteration_scaling", "2-iteration median > 1-iteration median",
       {"fig06_iteration_scaling.svg"}},
      {"fig7", "Fig. 7", "kernel distance vs percentage of non-determinism",
       "amg2013, 32 ranks, ND% 0..100 step 10, 1 node, 1 iter, 1-byte msgs, "
       "20 runs/setting",
       "fig07_nd_sweep", "~0 at 0% ND, monotone growth (Spearman > 0.8)",
       {"fig07_nd_sweep.svg", "fig07_nd_sweep.csv"}},
      {"fig8", "Fig. 8", "callstack frequency in high-ND regions",
       "amg2013, 32 ranks, 100% ND (Fig. 7 settings)",
       "fig08_callstack_attribution",
       "wildcard-receive call paths dominate the high-ND slices",
       {"fig08_callstacks.svg", "fig08_slice_profile.svg"}},
  };
  return experiments;
}

const ExperimentInfo* find_experiment(const std::string& id) {
  for (const ExperimentInfo& experiment : paper_experiments()) {
    if (experiment.id == id) return &experiment;
  }
  return nullptr;
}

std::string render_experiment_index() {
  std::ostringstream os;
  os << "Reproduced paper items (run `build/bench/<target>`; artifacts "
        "under results/):\n";
  for (const ExperimentInfo& experiment : paper_experiments()) {
    os << "  " << pad_right(experiment.id, 6)
       << pad_right(experiment.paper_item, 16)
       << pad_right(experiment.bench_target, 28) << experiment.title << '\n'
       << pad_right("", 22) << "workload: " << experiment.workload << '\n'
       << pad_right("", 22) << "expected: " << experiment.expected_shape
       << '\n';
  }
  return os.str();
}

}  // namespace anacin::core

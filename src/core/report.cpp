#include "core/report.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/fs.hpp"

namespace anacin::core {

void write_text_file(const std::string& path, const std::string& content) {
  // Crash-consistent: a full disk or mid-write crash leaves the previous
  // version (or nothing) in place, never a truncated-but-plausible file.
  support::atomic_write_file(path, content, support::PathClass::kReport);
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  ANACIN_CHECK(in.good(), "cannot open '" << path << "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : columns_(header.size()) {
  ANACIN_CHECK(columns_ > 0, "CSV needs at least one column");
  rows_.push_back(std::move(header));
}

void CsvWriter::add_row(const std::vector<std::string>& fields) {
  ANACIN_CHECK(fields.size() == columns_,
               "CSV row has " << fields.size() << " fields, expected "
                              << columns_);
  rows_.push_back(fields);
}

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string escaped = "\"";
  for (const char c : field) {
    if (c == '"') escaped += "\"\"";
    else escaped += c;
  }
  escaped += '"';
  return escaped;
}
}  // namespace

std::string CsvWriter::render() const {
  std::ostringstream os;
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  }
  return os.str();
}

void CsvWriter::save(const std::string& path) const {
  write_text_file(path, render());
}

void write_json_file(const std::string& path, const json::Value& document) {
  write_text_file(path, document.dump(2) + "\n");
}

std::string results_dir() {
  const char* env = std::getenv("ANACIN_RESULTS_DIR");
  return env != nullptr && *env != '\0' ? env : "results";
}

}  // namespace anacin::core

#pragma once

#include <string>
#include <vector>

#include "viz/svg.hpp"

namespace anacin::core {

/// Builder for a self-contained HTML analysis report with inline SVG
/// figures — this repository's stand-in for the Jupyter notebook packaged
/// with ANACIN-X ("the kernel distance visualization and the callstack
/// visualization can also be generated via a Jupyter Notebook").
///
/// Sections are rendered in insertion order; no external assets, so the
/// file can be mailed to students or attached to a bug report as-is.
class HtmlReport {
public:
  explicit HtmlReport(std::string title);

  void add_heading(const std::string& text);
  /// Paragraph text (HTML-escaped).
  void add_paragraph(const std::string& text);
  /// Monospace block (HTML-escaped), e.g. ASCII art or command lines.
  void add_preformatted(const std::string& text);
  /// Two-column key/value table.
  void add_table(const std::vector<std::pair<std::string, std::string>>& rows);
  /// Inline an SVG figure with a caption.
  void add_figure(const viz::SvgDocument& svg, const std::string& caption);

  std::string render() const;
  void save(const std::string& path) const;

private:
  std::string title_;
  std::vector<std::string> body_;
};

/// Escape text for HTML element content.
std::string html_escape(const std::string& text);

}  // namespace anacin::core

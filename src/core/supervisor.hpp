#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "support/error.hpp"
#include "support/failure_injector.hpp"

namespace anacin::core {

/// How the run supervisor treats failing work units. Defaults are
/// fail-fast and retry-free, matching the historical behavior exactly.
struct RetryPolicy {
  /// Retries *after* the first attempt; only transient failures
  /// (TransientError and subclasses, including DeadlineExceeded) retry.
  int max_retries = 0;
  /// First backoff duration; doubles per retry, scaled by a deterministic
  /// jitter in [0.5, 1.5) derived from the campaign seed and unit id so a
  /// retried campaign is reproducible. 0 disables sleeping entirely.
  std::uint64_t base_backoff_us = 1000;
  /// Per-attempt wall-clock deadline in milliseconds; an attempt that runs
  /// longer fails with DeadlineExceeded (detected when the attempt
  /// returns — the supervisor never preempts running work). 0 = none.
  double run_deadline_ms = 0.0;
};

/// Outcome of one supervised work unit.
struct UnitReport {
  bool ok = false;
  /// Attempts made (>= 1); attempts - 1 of them failed transiently.
  int attempts = 0;
  /// what() of the final failure; empty on success.
  std::string error;
  /// True when the final failure was transient (retries exhausted) rather
  /// than permanent.
  bool transient = false;
  /// Post-mortem details when the final failure carried them (worker-child
  /// deaths under --isolate=process; see support/error.hpp).
  UnitTriage triage;
  bool has_triage = false;
};

/// Deterministic failure injection lives in support/ (it also runs inside
/// sandboxed worker children); the historical name stays usable here.
using FailureInjector = support::FailureInjector;

/// Wraps every campaign work unit (per-run simulation, reference run,
/// kernel-distance pair) with the typed error taxonomy, a per-attempt
/// wall-clock deadline, and seeded exponential-backoff retries. Thread
/// safe: run() may be called concurrently from pool workers.
class Supervisor {
public:
  /// `campaign_seed` feeds the deterministic backoff jitter, so identical
  /// (seed, injected-failure schedule) pairs retry identically.
  Supervisor(RetryPolicy policy, std::uint64_t campaign_seed,
             FailureInjector injector = FailureInjector::from_env());

  const RetryPolicy& policy() const { return policy_; }
  /// The snapshotted injector, exposed so unit bodies can apply the
  /// crash/hang execution hooks in whichever process executes the work.
  const FailureInjector& injector() const { return injector_; }

  /// Execute `work`, retrying transient failures per the policy. Never
  /// throws for unit failures — the report carries the outcome and the
  /// caller chooses fail-fast (throw) or keep-going (quarantine).
  UnitReport run(const std::string& unit_id,
                 const std::function<void()>& work) const;

  /// Total transient retries performed by this supervisor (for the
  /// resilience.retries counter and determinism tests).
  std::uint64_t retries_performed() const;

private:
  std::uint64_t backoff_us(const std::string& unit_id, int attempt) const;

  RetryPolicy policy_;
  std::uint64_t campaign_seed_ = 0;
  FailureInjector injector_;
  mutable std::mutex mutex_;
  mutable std::uint64_t retries_ = 0;
};

}  // namespace anacin::core

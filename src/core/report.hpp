#pragma once

#include <string>
#include <vector>

#include "support/json.hpp"

namespace anacin::core {

/// Write text to a file, creating parent directories as needed.
void write_text_file(const std::string& path, const std::string& content);

std::string read_text_file(const std::string& path);

/// Minimal CSV emitter (quotes fields containing separators/quotes).
class CsvWriter {
public:
  explicit CsvWriter(std::vector<std::string> header);
  void add_row(const std::vector<std::string>& fields);
  std::string render() const;
  void save(const std::string& path) const;

private:
  std::size_t columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Save a JSON document (pretty-printed) to a file.
void write_json_file(const std::string& path, const json::Value& document);

/// Default output directory for figure/report artifacts ("results", or
/// $ANACIN_RESULTS_DIR when set).
std::string results_dir();

}  // namespace anacin::core

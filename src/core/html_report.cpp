#include "core/html_report.hpp"

#include <sstream>

#include "core/report.hpp"
#include "obs/obs.hpp"

namespace anacin::core {

std::string html_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': escaped += "&amp;"; break;
      case '<': escaped += "&lt;"; break;
      case '>': escaped += "&gt;"; break;
      case '"': escaped += "&quot;"; break;
      default: escaped += c;
    }
  }
  return escaped;
}

HtmlReport::HtmlReport(std::string title) : title_(std::move(title)) {}

void HtmlReport::add_heading(const std::string& text) {
  body_.push_back("<h2>" + html_escape(text) + "</h2>");
}

void HtmlReport::add_paragraph(const std::string& text) {
  body_.push_back("<p>" + html_escape(text) + "</p>");
}

void HtmlReport::add_preformatted(const std::string& text) {
  body_.push_back("<pre>" + html_escape(text) + "</pre>");
}

void HtmlReport::add_table(
    const std::vector<std::pair<std::string, std::string>>& rows) {
  std::ostringstream os;
  os << "<table>";
  for (const auto& [key, value] : rows) {
    os << "<tr><th>" << html_escape(key) << "</th><td>"
       << html_escape(value) << "</td></tr>";
  }
  os << "</table>";
  body_.push_back(os.str());
}

void HtmlReport::add_figure(const viz::SvgDocument& svg,
                            const std::string& caption) {
  std::ostringstream os;
  os << "<figure>" << svg.render() << "<figcaption>"
     << html_escape(caption) << "</figcaption></figure>";
  body_.push_back(os.str());
}

std::string HtmlReport::render() const {
  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
     << "<meta charset=\"utf-8\">\n<title>" << html_escape(title_)
     << "</title>\n<style>\n"
     << "body{font-family:sans-serif;max-width:960px;margin:2em auto;"
     << "color:#1a1a1a;line-height:1.45}\n"
     << "h1{border-bottom:2px solid #4878a8;padding-bottom:.2em}\n"
     << "h2{color:#30506e;margin-top:1.6em}\n"
     << "pre{background:#f4f6f8;padding:.8em;overflow-x:auto;"
     << "border-radius:4px;font-size:.85em}\n"
     << "table{border-collapse:collapse;margin:.8em 0}\n"
     << "th,td{border:1px solid #ccd5dd;padding:.35em .7em;text-align:left}\n"
     << "th{background:#eef2f6;font-weight:600}\n"
     << "figure{margin:1.2em 0;text-align:center}\n"
     << "figcaption{color:#555;font-size:.9em;margin-top:.4em}\n"
     << "</style>\n</head>\n<body>\n<h1>" << html_escape(title_)
     << "</h1>\n";
  for (const std::string& block : body_) os << block << '\n';
  os << "</body>\n</html>\n";
  return os.str();
}

void HtmlReport::save(const std::string& path) const {
  ANACIN_SPAN("report.save");
  write_text_file(path, render());
}

}  // namespace anacin::core

#include "core/campaign.hpp"

#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace anacin::core {

sim::SimConfig CampaignConfig::sim_config_for_run(int run_index) const {
  sim::SimConfig config;
  config.num_ranks = shape.num_ranks;
  config.num_nodes = num_nodes;
  config.seed = hash_combine(mix64(base_seed),
                             static_cast<std::uint64_t>(run_index));
  config.network = network;
  config.network.nd_fraction = nd_fraction;
  return config;
}

sim::SimConfig CampaignConfig::reference_sim_config() const {
  sim::SimConfig config = sim_config_for_run(0);
  config.seed = mix64(base_seed);
  config.network.nd_fraction = 0.0;
  return config;
}

json::Value CampaignConfig::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("pattern", pattern);
  doc.set("num_ranks", shape.num_ranks);
  doc.set("iterations", shape.iterations);
  doc.set("message_bytes", static_cast<std::int64_t>(shape.message_bytes));
  doc.set("num_nodes", num_nodes);
  doc.set("nd_percent", nd_fraction * 100.0);
  doc.set("num_runs", num_runs);
  doc.set("base_seed", base_seed);
  doc.set("kernel", kernel);
  doc.set("label_policy",
          std::string(kernels::label_policy_name(label_policy)));
  doc.set("reduction",
          measurement_reduction_is_reference() ? "to_reference" : "pairwise");
  return doc;
}

bool CampaignConfig::measurement_reduction_is_reference() const {
  return reduction == analysis::DistanceReduction::kToReference;
}

json::Value CampaignResult::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("config", config.to_json());
  doc.set("distances", json::Value::array_of(measurement.distances));
  json::Value summary = json::Value::object();
  summary.set("mean", distance_summary.mean);
  summary.set("stddev", distance_summary.stddev);
  summary.set("min", distance_summary.min);
  summary.set("q1", distance_summary.q1);
  summary.set("median", distance_summary.median);
  summary.set("q3", distance_summary.q3);
  summary.set("max", distance_summary.max);
  doc.set("summary", std::move(summary));
  doc.set("total_messages", total_messages);
  doc.set("total_wildcard_recvs", total_wildcard_recvs);
  return doc;
}

sim::RunResult run_pattern_once(const std::string& pattern,
                                const patterns::PatternConfig& shape,
                                const sim::SimConfig& sim_config) {
  ANACIN_CHECK(sim_config.num_ranks == shape.num_ranks,
               "pattern shape and sim config disagree on rank count");
  const auto pattern_impl = patterns::make_pattern(pattern);
  return sim::run_simulation(sim_config, pattern_impl->program(shape));
}

CampaignResult run_campaign(const CampaignConfig& config, ThreadPool& pool) {
  ANACIN_SPAN("campaign.run");
  ANACIN_CHECK(config.num_runs >= 1, "campaign needs at least one run");
  ANACIN_CHECK(config.nd_fraction >= 0.0 && config.nd_fraction <= 1.0,
               "nd_fraction must be in [0,1]");
  obs::counter("campaign.campaigns").add(1);
  obs::counter("campaign.runs")
      .add(static_cast<std::uint64_t>(config.num_runs));
  const auto pattern = patterns::make_pattern(config.pattern);
  const sim::RankProgram program = pattern->program(config.shape);

  CampaignResult result;
  result.config = config;
  result.graphs.resize(static_cast<std::size_t>(config.num_runs));
  std::vector<std::uint64_t> messages(
      static_cast<std::size_t>(config.num_runs));
  std::vector<std::uint64_t> wildcards(
      static_cast<std::size_t>(config.num_runs));

  {
    ANACIN_SPAN("campaign.simulate");
    pool.parallel_for(0, static_cast<std::size_t>(config.num_runs),
                      [&](std::size_t i) {
                        ANACIN_SPAN("campaign.simulate_run");
                        const sim::RunResult run = sim::run_simulation(
                            config.sim_config_for_run(static_cast<int>(i)),
                            program);
                        result.graphs[i] =
                            graph::EventGraph::from_trace(run.trace);
                        messages[i] = run.stats.messages;
                        wildcards[i] = run.stats.wildcard_recvs;
                      });
  }
  for (std::size_t i = 0; i < messages.size(); ++i) {
    result.total_messages += messages[i];
    result.total_wildcard_recvs += wildcards[i];
  }

  {
    ANACIN_SPAN("campaign.reference_run");
    const sim::RunResult reference_run =
        sim::run_simulation(config.reference_sim_config(), program);
    result.reference = graph::EventGraph::from_trace(reference_run.trace);
  }

  {
    ANACIN_SPAN("campaign.measure");
    const auto kernel = kernels::make_kernel(config.kernel);
    result.measurement =
        analysis::measure_nd(*kernel, config.label_policy, result.graphs,
                             &result.reference, config.reduction, pool);
    result.distance_summary =
        analysis::summarize(result.measurement.distances);
  }
  return result;
}

}  // namespace anacin::core

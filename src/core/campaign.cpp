#include "core/campaign.hpp"

#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "obs/obs.hpp"
#include "proc/executor.hpp"
#include "proc/worker_main.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace anacin::core {

sim::SimConfig CampaignConfig::sim_config_for_run(int run_index) const {
  sim::SimConfig config;
  config.num_ranks = shape.num_ranks;
  config.num_nodes = num_nodes;
  config.seed = hash_combine(mix64(base_seed),
                             static_cast<std::uint64_t>(run_index));
  config.network = network;
  config.network.nd_fraction = nd_fraction;
  config.faults = faults;
  return config;
}

sim::SimConfig CampaignConfig::reference_sim_config() const {
  sim::SimConfig config = sim_config_for_run(0);
  config.seed = mix64(base_seed);
  config.network.nd_fraction = 0.0;
  // The reference is always fault-free: a fault sweep's points then share
  // one clean baseline, so the measured distance isolates the faults.
  config.faults = sim::FaultConfig{};
  return config;
}

json::Value CampaignConfig::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("pattern", pattern);
  doc.set("num_ranks", shape.num_ranks);
  doc.set("iterations", shape.iterations);
  doc.set("message_bytes", static_cast<std::int64_t>(shape.message_bytes));
  doc.set("num_nodes", num_nodes);
  doc.set("nd_percent", nd_fraction * 100.0);
  doc.set("num_runs", num_runs);
  doc.set("base_seed", base_seed);
  doc.set("kernel", kernel);
  doc.set("label_policy",
          std::string(kernels::label_policy_name(label_policy)));
  doc.set("reduction",
          measurement_reduction_is_reference() ? "to_reference" : "pairwise");
  doc.set("faults", faults.to_json());
  return doc;
}

bool CampaignConfig::measurement_reduction_is_reference() const {
  return reduction == analysis::DistanceReduction::kToReference;
}

json::Value QuarantinedUnit::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("unit", unit);
  doc.set("error", error);
  doc.set("attempts", static_cast<std::int64_t>(attempts));
  if (has_triage) {
    json::Value details = json::Value::object();
    details.set("disposition", triage.disposition);
    if (!triage.signal.empty()) details.set("signal", triage.signal);
    if (triage.exit_status >= 0) {
      details.set("exit_status", static_cast<std::int64_t>(triage.exit_status));
    }
    details.set("peak_rss_kib", static_cast<std::int64_t>(triage.peak_rss_kib));
    details.set("heartbeat_age_ms", triage.heartbeat_age_ms);
    details.set("stderr_tail", triage.stderr_tail);
    doc.set("triage", std::move(details));
  }
  return doc;
}

json::Value CampaignResult::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("config", config.to_json());
  doc.set("distances", json::Value::array_of(measurement.distances));
  json::Value summary = json::Value::object();
  summary.set("count", static_cast<std::int64_t>(distance_summary.count));
  summary.set("mean", distance_summary.mean);
  summary.set("stddev", distance_summary.stddev);
  summary.set("min", distance_summary.min);
  summary.set("q1", distance_summary.q1);
  summary.set("median", distance_summary.median);
  summary.set("q3", distance_summary.q3);
  summary.set("max", distance_summary.max);
  doc.set("summary", std::move(summary));
  doc.set("total_messages", total_messages);
  doc.set("total_wildcard_recvs", total_wildcard_recvs);
  doc.set("total_drops", total_drops);
  doc.set("total_duplicates", total_duplicates);
  doc.set("total_straggler_events", total_straggler_events);
  json::Value resilience = json::Value::object();
  resilience.set("complete", complete());
  // Deliberately no retry count here: retries are operational telemetry
  // (they vary with where and how the campaign ran — a re-queued unit on
  // a replacement agent produces the identical artifact), and the report
  // must stay byte-identical across local, isolated, and distributed
  // execution. Retry observability lives in the metrics snapshot
  // (resilience.retries) and CampaignResult::retries.
  json::Value quarantine = json::Value::array();
  for (const QuarantinedUnit& unit : quarantined) {
    quarantine.push_back(unit.to_json());
  }
  resilience.set("quarantined", std::move(quarantine));
  // Degradation is deterministic under io chaos (seeded) and false on
  // every healthy run, so the report stays byte-identical across local,
  // isolated, and distributed execution.
  resilience.set("store_degraded", store_degraded);
  doc.set("resilience", std::move(resilience));
  return doc;
}

sim::RunResult run_pattern_once(const std::string& pattern,
                                const patterns::PatternConfig& shape,
                                const sim::SimConfig& sim_config) {
  ANACIN_CHECK(sim_config.num_ranks == shape.num_ranks,
               "pattern shape and sim config disagree on rank count");
  const auto pattern_impl = patterns::make_pattern(pattern);
  return sim::run_simulation(sim_config, pattern_impl->program(shape));
}

namespace {

/// Process-wide memo of jitter-free reference executions, keyed by the
/// reference run's artifact key. Sweep points differ only in nd_fraction,
/// which the reference run zeroes out, so an 11-point sweep shares one
/// reference simulation. Works with or without an artifact store.
struct ReferenceMemo {
  std::mutex mutex;
  std::unordered_map<std::string, std::shared_ptr<const graph::EventGraph>>
      by_key;
};

ReferenceMemo& reference_memo() {
  static ReferenceMemo memo;
  return memo;
}

/// Coarse bound so a long-lived process sweeping many shapes cannot grow
/// the memo without limit (graphs are a few MB each at paper scale).
constexpr std::size_t kMaxReferenceMemoEntries = 64;

/// Produce the reference event graph: memo, then store, then simulate.
/// Each unique reference key is simulated at most once per process (see
/// the `campaign.reference_sims` counter).
std::shared_ptr<const graph::EventGraph> reference_graph(
    const CampaignConfig& config, const sim::RankProgram& program,
    store::ArtifactStore* store) {
  const sim::SimConfig sim_config = config.reference_sim_config();
  const store::Digest key =
      store::ArtifactStore::run_key(config.pattern, config.shape, sim_config);
  const std::string hex = key.to_hex();

  ReferenceMemo& memo = reference_memo();
  {
    std::lock_guard<std::mutex> lock(memo.mutex);
    if (const auto it = memo.by_key.find(hex); it != memo.by_key.end()) {
      return it->second;
    }
  }

  std::shared_ptr<const graph::EventGraph> graph;
  if (store != nullptr) {
    if (auto cached = store->load_run(key)) {
      graph = std::make_shared<const graph::EventGraph>(
          std::move(cached->graph));
    }
  }
  if (!graph) {
    obs::counter("campaign.reference_sims").add(1);
    const sim::RunResult run = sim::run_simulation(sim_config, program);
    store::EncodedRun encoded;
    encoded.graph = graph::EventGraph::from_trace(run.trace);
    encoded.messages = run.stats.messages;
    encoded.wildcard_recvs = run.stats.wildcard_recvs;
    if (store != nullptr) store->save_run(key, encoded);
    graph = std::make_shared<const graph::EventGraph>(
        std::move(encoded.graph));
  }

  std::lock_guard<std::mutex> lock(memo.mutex);
  if (memo.by_key.size() >= kMaxReferenceMemoEntries) memo.by_key.clear();
  memo.by_key.emplace(hex, graph);
  return graph;
}

/// Store-backed equivalent of analysis::measure_nd: every pair distance is
/// a store lookup first; only misses build features and compute (via
/// kernels::counted_distance, so `kernels.distances_computed` stays an
/// exact census and a fully warm campaign leaves it untouched). Argument
/// orders mirror the batched kernels:: entry points so results are
/// bit-identical with and without a store.
///
/// `runs` may be a subset of the campaign's runs (quarantined runs are
/// excluded); `run_labels[i]` carries the original run index so pair work
/// units keep stable ids. Each missing pair distance is a supervised work
/// unit: with `keep_going`, a permanently failing pair is dropped from
/// the sample and appended to `quarantined` instead of aborting.
analysis::NdMeasurement measure_nd_with_store(
    const CampaignConfig& config,
    const std::vector<const graph::EventGraph*>& runs,
    const std::vector<store::Digest>& run_keys,
    const std::vector<int>& run_labels, const graph::EventGraph& reference,
    const store::Digest& reference_key, ThreadPool& pool,
    store::ArtifactStore& store, const Supervisor& supervisor,
    bool keep_going, CancelToken* cancel,
    std::vector<QuarantinedUnit>* quarantined,
    proc::UnitExecutor* workers) {
  ANACIN_SPAN("analysis.measure_nd");
  obs::counter("analysis.nd_measurements").add(1);
  const auto kernel = kernels::make_kernel(config.kernel);
  const std::size_t n = runs.size();

  struct Pair {
    std::size_t a;  // index into runs, or n for the reference
    std::size_t b;
    std::size_t out;  // slot in measurement.distances
    store::Digest key;
  };
  const auto key_of = [&](std::size_t index) -> const store::Digest& {
    return index == n ? reference_key : run_keys[index];
  };
  const auto label_of = [&](std::size_t index) {
    return index == n ? std::string("ref")
                      : std::to_string(run_labels[index]);
  };

  std::vector<Pair> pairs;
  if (config.measurement_reduction_is_reference()) {
    pairs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      // distances_to_reference order: (reference, run i).
      pairs.push_back({n, i, i, {}});
    }
  } else {
    pairs.reserve(n * (n - 1) / 2);
    std::size_t out = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        // upper_triangle order of pairwise_distances.
        pairs.push_back({i, j, out++, {}});
      }
    }
  }
  for (Pair& pair : pairs) {
    pair.key = store::ArtifactStore::distance_key(
        config.kernel, config.label_policy, key_of(pair.a), key_of(pair.b));
  }

  analysis::NdMeasurement measurement;
  measurement.reduction = config.reduction;
  measurement.distances.assign(pairs.size(), 0.0);

  std::vector<Pair> misses;
  std::vector<char> need_features(n + 1, 0);
  for (const Pair& pair : pairs) {
    if (const auto hit = store.load_distance(pair.key)) {
      measurement.distances[pair.out] = *hit;
    } else {
      need_features[pair.a] = 1;
      need_features[pair.b] = 1;
      misses.push_back(pair);
    }
  }
  if (misses.empty()) return measurement;

  // Feature-embed only the graphs that participate in a miss (index n is
  // the reference). Under --isolate=process the worker children build
  // features themselves, so the campaign process skips this entirely.
  std::vector<kernels::FeatureVector> features(n + 1);
  if (workers == nullptr) {
    ANACIN_SPAN("kernels.feature_extraction");
    static obs::Counter& feature_tasks =
        obs::counter("kernels.feature_tasks");
    pool.parallel_for(
        0, n + 1,
        [&](std::size_t i) {
          if (!need_features[i]) return;
          // Extraction is itself cached: a resumed or re-kerneled campaign
          // reloads each run's histogram instead of re-walking its graph.
          // `kernels.feature_tasks` counts only real extractions, so it
          // stays a census of work actually done.
          const store::Digest key = store::ArtifactStore::features_key(
              config.kernel, config.label_policy, key_of(i));
          if (auto cached = store.load_features(key)) {
            features[i] = std::move(*cached);
            return;
          }
          const graph::EventGraph& graph = i == n ? reference : *runs[i];
          features[i] = kernel->features(
              kernels::build_labeled_graph(graph, config.label_policy));
          store.save_features(key, features[i]);
          feature_tasks.add(1);
        },
        1, cancel);
    if (cancel != nullptr && cancel->cancelled()) {
      throw InterruptedError("interrupted during feature extraction");
    }
  }

  std::vector<UnitReport> reports(misses.size());
  std::vector<char> slot_failed(measurement.distances.size(), 0);
  pool.parallel_for(
      0, misses.size(),
      [&](std::size_t m) {
        const Pair& pair = misses[m];
        const std::string unit =
            "pair:" + label_of(pair.a) + "-" + label_of(pair.b);
        reports[m] = supervisor.run(unit, [&] {
          if (workers != nullptr) {
            // The child computes and publishes the distance; the parent
            // reads it back through the store, so isolated results are
            // byte-identical to in-process ones. Digests travel in
            // request order — the child computes in that order too.
            workers->execute(unit, proc::make_pair_request(
                                       unit, config.kernel,
                                       config.label_policy, key_of(pair.a),
                                       key_of(pair.b)));
            const auto hit = store.load_distance(pair.key);
            if (!hit) {
              throw PermanentError(
                  "worker child reported success for unit '" + unit +
                  "' but the distance artifact is missing from the store");
            }
            measurement.distances[pair.out] = *hit;
            return;
          }
          supervisor.injector().apply_execution_hooks(unit);
          const double distance =
              kernels::counted_distance(features[pair.a], features[pair.b]);
          measurement.distances[pair.out] = distance;
          store.save_distance(pair.key, distance);
        });
        if (!reports[m].ok) {
          if (!keep_going) {
            throw PermanentError("work unit '" + unit + "' failed after " +
                                 std::to_string(reports[m].attempts) +
                                 " attempt(s): " + reports[m].error);
          }
          slot_failed[pair.out] = 1;
        }
      },
      1, cancel);
  if (cancel != nullptr && cancel->cancelled()) {
    throw InterruptedError("interrupted during distance measurement");
  }

  // Quarantine failed pairs (in deterministic miss order) and compact
  // their slots out of the sample.
  bool any_failed = false;
  for (std::size_t m = 0; m < misses.size(); ++m) {
    if (reports[m].ok) continue;
    any_failed = true;
    const Pair& pair = misses[m];
    quarantined->push_back({"pair:" + label_of(pair.a) + "-" + label_of(pair.b),
                            reports[m].error, reports[m].attempts,
                            reports[m].triage, reports[m].has_triage});
    obs::counter("resilience.pairs_quarantined").add(1);
  }
  if (any_failed) {
    std::vector<double> surviving;
    surviving.reserve(measurement.distances.size());
    for (std::size_t slot = 0; slot < measurement.distances.size(); ++slot) {
      if (!slot_failed[slot]) surviving.push_back(measurement.distances[slot]);
    }
    measurement.distances = std::move(surviving);
  }
  return measurement;
}

}  // namespace

CampaignResult run_campaign(const CampaignConfig& config, ThreadPool& pool,
                            store::ArtifactStore* store,
                            const ResilienceOptions& resilience) {
  ANACIN_SPAN("campaign.run");
  ANACIN_CHECK(config.num_runs >= 1, "campaign needs at least one run");
  ANACIN_CHECK(config.nd_fraction >= 0.0 && config.nd_fraction <= 1.0,
               "nd_fraction must be in [0,1]");
  obs::counter("campaign.campaigns").add(1);
  obs::counter("campaign.runs")
      .add(static_cast<std::uint64_t>(config.num_runs));
  const auto pattern = patterns::make_pattern(config.pattern);
  const sim::RankProgram program = pattern->program(config.shape);
  const std::size_t num_runs = static_cast<std::size_t>(config.num_runs);

  proc::UnitExecutor* const workers = resilience.executor;
  ANACIN_CHECK(workers == nullptr || store != nullptr,
               "--isolate=process requires an artifact store: isolated "
               "results flow back through it");

  const Supervisor supervisor(resilience.retry, config.base_seed);
  CancelToken* const cancel = resilience.cancel;
  const auto check_interrupt = [&](const char* where) {
    if (cancel != nullptr && cancel->cancelled()) {
      throw InterruptedError(std::string("interrupted during ") + where +
                             " — in-flight work drained");
    }
  };

  CampaignResult result;
  result.config = config;
  result.graphs.resize(num_runs);
  std::vector<std::uint64_t> messages(num_runs);
  std::vector<std::uint64_t> wildcards(num_runs);
  std::vector<std::uint64_t> drops(num_runs);
  std::vector<std::uint64_t> duplicates(num_runs);
  std::vector<std::uint64_t> stragglers(num_runs);
  std::vector<store::Digest> run_keys(num_runs);
  std::vector<UnitReport> run_reports(num_runs);

  {
    ANACIN_SPAN("campaign.simulate");
    pool.parallel_for(
        0, num_runs,
        [&](std::size_t i) {
          ANACIN_SPAN("campaign.simulate_run");
          const std::string unit = "run:" + std::to_string(i);
          run_reports[i] = supervisor.run(unit, [&] {
            const sim::SimConfig sim_config =
                config.sim_config_for_run(static_cast<int>(i));
            run_keys[i] = store::ArtifactStore::run_key(
                config.pattern, config.shape, sim_config);
            if (workers != nullptr) {
              // Dispatch even on a warm store: the child answers fast from
              // the cache, injected faults stay deterministic, and the
              // parent's load below is guaranteed to hit.
              workers->execute(unit,
                               proc::make_run_request(unit, config.pattern,
                                                      config.shape,
                                                      sim_config));
            } else {
              supervisor.injector().apply_execution_hooks(unit);
            }
            if (store != nullptr) {
              if (auto cached = store->load_run(run_keys[i])) {
                result.graphs[i] = std::move(cached->graph);
                messages[i] = cached->messages;
                wildcards[i] = cached->wildcard_recvs;
                drops[i] = cached->drops;
                duplicates[i] = cached->duplicates;
                stragglers[i] = cached->straggler_events;
                return;
              }
            }
            const sim::RunResult run =
                sim::run_simulation(sim_config, program);
            store::EncodedRun encoded;
            encoded.graph = graph::EventGraph::from_trace(run.trace);
            encoded.messages = run.stats.messages;
            encoded.wildcard_recvs = run.stats.wildcard_recvs;
            encoded.drops = run.stats.drops;
            encoded.duplicates = run.stats.duplicates;
            encoded.straggler_events = run.stats.straggler_events;
            if (store != nullptr) store->save_run(run_keys[i], encoded);
            result.graphs[i] = std::move(encoded.graph);
            messages[i] = encoded.messages;
            wildcards[i] = encoded.wildcard_recvs;
            drops[i] = encoded.drops;
            duplicates[i] = encoded.duplicates;
            stragglers[i] = encoded.straggler_events;
          });
          if (!run_reports[i].ok && !resilience.keep_going) {
            // Fail fast: parallel_for's cancellation skips every
            // not-yet-started run before this rethrows.
            throw PermanentError("work unit '" + unit + "' failed after " +
                                 std::to_string(run_reports[i].attempts) +
                                 " attempt(s): " + run_reports[i].error);
          }
        },
        1, cancel);
  }
  check_interrupt("simulation");

  // Quarantine failed runs in deterministic index order; their stat slots
  // stay zero and their graphs stay empty.
  std::vector<std::size_t> ok_runs;
  ok_runs.reserve(num_runs);
  for (std::size_t i = 0; i < num_runs; ++i) {
    if (run_reports[i].ok) {
      ok_runs.push_back(i);
    } else {
      result.quarantined.push_back(
          {"run:" + std::to_string(i), run_reports[i].error,
           run_reports[i].attempts, run_reports[i].triage,
           run_reports[i].has_triage});
      obs::counter("resilience.runs_quarantined").add(1);
      result.graphs[i] = graph::EventGraph{};
      messages[i] = wildcards[i] = drops[i] = duplicates[i] =
          stragglers[i] = 0;
    }
  }
  ANACIN_CHECK(!ok_runs.empty(),
               "campaign quarantined every run — nothing left to measure");
  for (std::size_t i = 0; i < messages.size(); ++i) {
    result.total_messages += messages[i];
    result.total_wildcard_recvs += wildcards[i];
    result.total_drops += drops[i];
    result.total_duplicates += duplicates[i];
    result.total_straggler_events += stragglers[i];
  }

  {
    ANACIN_SPAN("campaign.reference_run");
    // The reference is the measurement baseline: a permanent failure here
    // is fatal even under keep-going (there is nothing to measure
    // against), but it still gets the supervisor's retries and deadline.
    std::shared_ptr<const graph::EventGraph> reference;
    const UnitReport report = supervisor.run("reference", [&] {
      if (workers != nullptr) {
        workers->execute("reference",
                         proc::make_run_request("reference", config.pattern,
                                                config.shape,
                                                config.reference_sim_config()));
      } else {
        supervisor.injector().apply_execution_hooks("reference");
      }
      reference = reference_graph(config, program, store);
    });
    if (!report.ok) {
      throw PermanentError("work unit 'reference' failed after " +
                           std::to_string(report.attempts) +
                           " attempt(s): " + report.error);
    }
    result.reference = *reference;
  }
  check_interrupt("reference run");

  {
    ANACIN_SPAN("campaign.measure");
    const bool subset = ok_runs.size() < num_runs;
    if (store != nullptr) {
      const store::Digest reference_key = store::ArtifactStore::run_key(
          config.pattern, config.shape, config.reference_sim_config());
      std::vector<const graph::EventGraph*> run_view;
      std::vector<store::Digest> key_view;
      std::vector<int> label_view;
      run_view.reserve(ok_runs.size());
      key_view.reserve(ok_runs.size());
      label_view.reserve(ok_runs.size());
      for (const std::size_t i : ok_runs) {
        run_view.push_back(&result.graphs[i]);
        key_view.push_back(run_keys[i]);
        label_view.push_back(static_cast<int>(i));
      }
      result.measurement = measure_nd_with_store(
          config, run_view, key_view, label_view, result.reference,
          reference_key, pool, *store, supervisor, resilience.keep_going,
          cancel, &result.quarantined, workers);
    } else {
      // Without a store the batched kernels:: entry points do the work;
      // supervise the measurement as one unit (pair-level supervision is
      // the store path's job).
      const std::vector<graph::EventGraph>* run_set = &result.graphs;
      std::vector<graph::EventGraph> surviving;
      if (subset) {
        surviving.reserve(ok_runs.size());
        for (const std::size_t i : ok_runs) {
          surviving.push_back(result.graphs[i]);
        }
        run_set = &surviving;
      }
      const auto kernel = kernels::make_kernel(config.kernel);
      const UnitReport report = supervisor.run("measure", [&] {
        supervisor.injector().apply_execution_hooks("measure");
        result.measurement =
            analysis::measure_nd(*kernel, config.label_policy, *run_set,
                                 &result.reference, config.reduction, pool);
      });
      if (!report.ok) {
        if (!resilience.keep_going) {
          throw PermanentError("work unit 'measure' failed after " +
                               std::to_string(report.attempts) +
                               " attempt(s): " + report.error);
        }
        result.quarantined.push_back({"measure", report.error, report.attempts,
                                      report.triage, report.has_triage});
        obs::counter("resilience.pairs_quarantined").add(1);
        result.measurement = analysis::NdMeasurement{};
        result.measurement.reduction = config.reduction;
      }
    }
    result.distance_summary =
        result.measurement.distances.empty()
            ? analysis::Summary{}
            : analysis::summarize(result.measurement.distances);
  }
  check_interrupt("measurement");
  result.retries = supervisor.retries_performed();
  result.store_degraded = store != nullptr && store->degraded();
  if (!result.quarantined.empty()) {
    obs::counter("resilience.campaigns_partial").add(1);
  }
  return result;
}

}  // namespace anacin::core

#pragma once

#include <string>
#include <vector>

#include "analysis/nd_measurement.hpp"
#include "analysis/stats.hpp"
#include "core/supervisor.hpp"
#include "graph/event_graph.hpp"
#include "kernels/kernel.hpp"
#include "patterns/pattern.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "store/store.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"

namespace anacin::proc {
class UnitExecutor;  // proc/executor.hpp
}

namespace anacin::core {

/// One experimental setting: a mini-application shape, a platform
/// configuration, and how many independent executions to sample. This is
/// the unit in which the paper's figures are expressed ("20 executions of
/// the Unstructured Mesh mini-application on 32 MPI processes at 100%
/// non-determinism").
struct CampaignConfig {
  std::string pattern = "message_race";
  patterns::PatternConfig shape;
  int num_nodes = 1;
  /// The paper's "percentage of non-determinism" as a fraction in [0,1].
  double nd_fraction = 1.0;
  sim::NetworkConfig network;  // nd_fraction above overrides network's
  /// Fault injection applied to every noisy run; the reference run is
  /// always fault-free, so fault sweeps measure distance against one clean
  /// baseline.
  sim::FaultConfig faults;
  int num_runs = 20;
  /// Run i uses seed derive(base_seed, i); the reference run disables
  /// jitter entirely.
  std::uint64_t base_seed = 1000;
  std::string kernel = "wl:2";
  kernels::LabelPolicy label_policy = kernels::LabelPolicy::kTypePeer;
  analysis::DistanceReduction reduction =
      analysis::DistanceReduction::kToReference;

  sim::SimConfig sim_config_for_run(int run_index) const;
  sim::SimConfig reference_sim_config() const;
  bool measurement_reduction_is_reference() const;
  json::Value to_json() const;
};

/// How run_campaign behaves when a work unit fails or the user interrupts
/// the process. Defaults reproduce the historical behavior: fail-fast, no
/// retries, no deadline, no cancellation.
struct ResilienceOptions {
  RetryPolicy retry;
  /// Quarantine failed work units (recorded in CampaignResult) instead of
  /// aborting the campaign; the default aborts on the first permanent
  /// failure and cancels all not-yet-started units.
  bool keep_going = false;
  /// External cancellation (the CLI's SIGINT/SIGTERM token). When
  /// cancelled, in-flight units finish, unstarted units are skipped, and
  /// run_campaign throws InterruptedError.
  CancelToken* cancel = nullptr;
  /// When set, run/reference/pair work units execute out-of-process
  /// through this executor — a sandboxed worker pool (--isolate=process)
  /// or a fleet of remote agents (`anacin serve`) — with results flowing
  /// back through the artifact store, which therefore must be present.
  /// Not owned. nullptr = historical in-process execution.
  proc::UnitExecutor* executor = nullptr;
};

/// A work unit that permanently failed under --keep-going. `unit` names
/// the supervisor's work unit ("run:<i>", "pair:<a>-<b>", "measure").
struct QuarantinedUnit {
  std::string unit;
  std::string error;
  int attempts = 0;
  /// Crash-triage details when the unit died in a worker child (signal
  /// name, peak RSS, stderr tail, ...); see support/error.hpp.
  UnitTriage triage;
  bool has_triage = false;

  json::Value to_json() const;
};

/// All runs of one campaign plus the kernel-distance measurement.
struct CampaignResult {
  CampaignConfig config;
  /// Event graphs of the `num_runs` noisy executions. Quarantined runs
  /// leave their slot as an empty graph and are excluded from the
  /// measurement.
  std::vector<graph::EventGraph> graphs;
  /// Jitter-free reference execution.
  graph::EventGraph reference;
  analysis::NdMeasurement measurement;
  analysis::Summary distance_summary;
  /// Aggregate simulator counters over the noisy runs.
  std::uint64_t total_messages = 0;
  std::uint64_t total_wildcard_recvs = 0;
  std::uint64_t total_drops = 0;
  std::uint64_t total_duplicates = 0;
  std::uint64_t total_straggler_events = 0;
  /// Failed work units recorded under --keep-going (empty = clean run).
  std::vector<QuarantinedUnit> quarantined;
  /// Transient retries the supervisor performed for this campaign.
  std::uint64_t retries = 0;
  /// True when the artifact store hit a persistent disk fault (ENOSPC,
  /// EIO) during this campaign and fell back to --no-store semantics.
  /// The results are complete — just computed without caching.
  bool store_degraded = false;

  bool complete() const { return quarantined.empty(); }

  json::Value to_json() const;
};

/// Execute a campaign: num_runs simulations (parallel across the pool),
/// the reference run, and the kernel-distance reduction.
///
/// With a store (the process-global one by default — the default argument
/// is evaluated at each call, so installing a store via
/// store::set_active_store() makes every campaign incremental), each run
/// and each kernel distance is a content-addressed lookup first and a
/// computation only on a miss; a warm store re-runs a campaign without a
/// single simulation or distance computation, bit-identically. Pass
/// nullptr to force everything to be recomputed.
///
/// The jitter-free reference execution is additionally memoized in-process
/// (independent of the store), so sweep points that share
/// (pattern, shape, base_seed) simulate it once — see the
/// `campaign.reference_sims` counter.
///
/// Resilience (see docs/RESILIENCE.md): every work unit (per-run
/// simulation, reference run, kernel-distance pair) runs under a
/// Supervisor with typed retries and an optional per-attempt deadline.
/// The default is fail-fast — the first permanent failure cancels all
/// unstarted units and rethrows. With `resilience.keep_going` the failed
/// units are quarantined in the result instead and the campaign
/// completes with the surviving runs.
CampaignResult run_campaign(
    const CampaignConfig& config, ThreadPool& pool,
    store::ArtifactStore* store = store::active_store(),
    const ResilienceOptions& resilience = {});

/// Convenience for single executions of a pattern.
sim::RunResult run_pattern_once(const std::string& pattern,
                                const patterns::PatternConfig& shape,
                                const sim::SimConfig& sim_config);

}  // namespace anacin::core

#pragma once

#include <span>
#include <vector>

namespace anacin::analysis {

/// Five-number-plus summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample stddev (n-1), 0 for n < 2
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
};

double mean(std::span<const double> values);
/// Sample variance (n-1 denominator); 0 for fewer than two values.
double variance(std::span<const double> values);
double stddev(std::span<const double> values);
/// Linear-interpolation quantile, q in [0, 1]. Throws on empty input.
double quantile(std::span<const double> values, double q);
double median(std::span<const double> values);
Summary summarize(std::span<const double> values);

/// Spearman rank correlation in [-1, 1] (ties get average ranks).
/// Used to check monotone relationships, e.g. kernel distance vs ND%.
double spearman(std::span<const double> x, std::span<const double> y);

/// Two-sided Mann–Whitney U test (normal approximation with tie
/// correction). Returns the p-value for the hypothesis that the two
/// samples come from the same distribution.
struct MannWhitneyResult {
  double u_statistic = 0.0;
  double z_score = 0.0;
  double p_value = 1.0;
};
MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                 std::span<const double> b);

}  // namespace anacin::analysis

#include "analysis/nd_measurement.hpp"

#include <algorithm>

#include "graph/slicing.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"

namespace anacin::analysis {

NdMeasurement measure_nd(const kernels::GraphKernel& kernel,
                         kernels::LabelPolicy policy,
                         const std::vector<graph::EventGraph>& runs,
                         const graph::EventGraph* reference,
                         DistanceReduction reduction, ThreadPool& pool) {
  ANACIN_SPAN("analysis.measure_nd");
  ANACIN_CHECK(!runs.empty(), "measure_nd needs at least one run");
  obs::counter("analysis.nd_measurements").add(1);
  std::vector<kernels::LabeledGraph> labeled(runs.size());
  pool.parallel_for(0, runs.size(), [&](std::size_t i) {
    labeled[i] = kernels::build_labeled_graph(runs[i], policy);
  });

  NdMeasurement measurement;
  measurement.reduction = reduction;
  switch (reduction) {
    case DistanceReduction::kToReference: {
      ANACIN_CHECK(reference != nullptr,
                   "kToReference reduction needs a reference run");
      const kernels::LabeledGraph reference_labeled =
          kernels::build_labeled_graph(*reference, policy);
      measurement.distances = kernels::distances_to_reference(
          kernel, reference_labeled, labeled, pool);
      break;
    }
    case DistanceReduction::kPairwise: {
      measurement.distances =
          kernels::pairwise_distances(kernel, labeled, pool).upper_triangle();
      break;
    }
  }
  return measurement;
}

SliceProfile slice_profile(const kernels::GraphKernel& kernel,
                           kernels::LabelPolicy policy,
                           const std::vector<graph::EventGraph>& runs,
                           std::uint64_t slice_window, ThreadPool& pool) {
  ANACIN_CHECK(runs.size() >= 2, "slice profile needs at least two runs");
  std::vector<graph::SliceSet> slices;
  slices.reserve(runs.size());
  std::size_t num_slices = 0;
  for (const auto& run : runs) {
    slices.push_back(graph::slice_by_lamport_window(run, slice_window));
    num_slices = std::max(num_slices, slices.back().num_slices);
  }

  SliceProfile profile;
  profile.window = slice_window;
  profile.distance.assign(num_slices, 0.0);

  pool.parallel_for(0, num_slices, [&](std::size_t s) {
    // Feature-embed each run's slice-s subgraph.
    std::vector<kernels::FeatureVector> features;
    features.reserve(runs.size());
    for (std::size_t r = 0; r < runs.size(); ++r) {
      static const std::vector<graph::NodeId> kEmpty;
      const std::vector<graph::NodeId>& nodes =
          s < slices[r].num_slices ? slices[r].nodes_in_slice[s] : kEmpty;
      const kernels::LabeledGraph sub =
          kernels::build_labeled_subgraph(runs[r], nodes, policy);
      features.push_back(kernel.features(sub));
    }
    double total = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < features.size(); ++i) {
      for (std::size_t j = i + 1; j < features.size(); ++j) {
        total += kernels::kernel_distance(features[i], features[j]);
        ++pairs;
      }
    }
    profile.distance[s] = pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
  });
  return profile;
}

}  // namespace anacin::analysis

#pragma once

#include <span>
#include <vector>

#include "analysis/stats.hpp"

namespace anacin::analysis {

/// Data needed to draw one violin: a kernel density estimate evaluated on a
/// regular grid, plus the quartiles overlaid by the plot.
struct ViolinData {
  std::vector<double> grid;     // sample-value axis
  std::vector<double> density;  // estimated density at each grid point
  Summary summary;
  double bandwidth = 0.0;
};

/// Silverman's rule-of-thumb bandwidth, floored at a small positive value
/// so degenerate samples (e.g. all-zero kernel distances at 0% ND) still
/// produce a drawable sliver.
double silverman_bandwidth(std::span<const double> values);

/// Gaussian KDE on `grid_points` evenly spaced points spanning
/// [min - 2h, max + 2h]. bandwidth <= 0 selects Silverman's rule.
ViolinData gaussian_kde(std::span<const double> values,
                        std::size_t grid_points = 64,
                        double bandwidth = 0.0);

}  // namespace anacin::analysis

#pragma once

#include <cstddef>
#include <vector>

#include "kernels/distance_matrix.hpp"

namespace anacin::analysis {

/// Partition of runs into behavior groups.
struct Clustering {
  /// Item indices per cluster; clusters ordered by their smallest member.
  std::vector<std::vector<std::size_t>> clusters;
  /// Cluster index of each item.
  std::vector<std::size_t> cluster_of;

  std::size_t num_clusters() const { return clusters.size(); }
};

/// Single-linkage agglomerative clustering with a distance cutoff: two
/// runs land in the same cluster iff they are connected by a chain of
/// pairwise kernel distances <= `threshold`.
///
/// This is how the ANACIN-X methodology groups executions by behavior: a
/// deterministic application yields one cluster; distinct race outcomes
/// (or distinct code paths) split into several.
Clustering single_linkage(const kernels::DistanceMatrix& distances,
                          double threshold);

/// Convenience: the largest gap in the sorted pairwise distances, a
/// simple automatic threshold between "same behavior" and "different
/// behavior" scales. Returns 0 when all distances are equal.
double largest_gap_threshold(const kernels::DistanceMatrix& distances);

}  // namespace anacin::analysis

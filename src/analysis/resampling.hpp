#pragma once

#include <functional>
#include <span>

#include "support/rng.hpp"

namespace anacin::analysis {

/// Percentile bootstrap confidence interval for an arbitrary statistic.
/// Deterministic given the seed (like everything else in this library).
struct BootstrapCi {
  double lower = 0.0;
  double upper = 0.0;
  double point_estimate = 0.0;
};

using Statistic = std::function<double(std::span<const double>)>;

BootstrapCi bootstrap_ci(std::span<const double> values,
                         const Statistic& statistic, double confidence = 0.95,
                         std::size_t resamples = 2000,
                         std::uint64_t seed = 0xB007);

/// Cliff's delta effect size in [-1, 1]: P(a > b) - P(a < b) over all
/// cross pairs. |delta| >= 0.474 is conventionally a "large" effect —
/// a robust companion to the Mann–Whitney test when comparing
/// kernel-distance samples (e.g. 32 vs 16 processes).
double cliffs_delta(std::span<const double> a, std::span<const double> b);

/// Exact-style permutation test: two-sided p-value for the hypothesis that
/// `a` and `b` come from the same distribution, using |statistic(a) -
/// statistic(b)| as the test statistic under random relabelling. Makes no
/// normality assumption — appropriate for small kernel-distance samples.
double permutation_test(std::span<const double> a, std::span<const double> b,
                        const Statistic& statistic,
                        std::size_t permutations = 2000,
                        std::uint64_t seed = 0x9E47);

}  // namespace anacin::analysis

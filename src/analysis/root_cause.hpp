#pragma once

#include <string>
#include <vector>

#include "analysis/nd_measurement.hpp"
#include "graph/event_graph.hpp"
#include "kernels/kernel.hpp"
#include "support/thread_pool.hpp"

namespace anacin::analysis {

/// One bar of the paper's Fig. 8: a call path and its normalized relative
/// frequency inside the most non-deterministic logical-time slices.
struct CallstackFrequency {
  std::string path;
  double frequency = 0.0;       // normalized to sum to 1 over the report
  std::size_t occurrences = 0;  // raw event count
  /// Fraction of this path's counted events that were wildcard receives —
  /// a direct hint that the call site is a root source.
  double wildcard_share = 0.0;
};

struct RootCauseConfig {
  /// Logical-time slice width.
  std::uint64_t slice_window = 16;
  /// Slices whose divergence is within `hot_fraction` of the peak count as
  /// "high non-determinism" regions.
  double hot_fraction = 0.5;
  /// Only tally receive events (the event class whose matching varies).
  bool recvs_only = true;
};

/// Outcome of the Fig. 8 analysis: the divergence profile over logical
/// time, which slices were deemed hot, and the callstack histogram inside
/// those slices aggregated over all runs.
struct RootCauseReport {
  SliceProfile profile;
  std::vector<std::size_t> hot_slices;
  std::vector<CallstackFrequency> callstacks;  // sorted by frequency, desc
};

/// Identify likely root sources of non-determinism: slice the event graphs,
/// find the logical-time regions where runs diverge most (per-slice kernel
/// distance), and rank the call paths active there (paper Goal C.2).
RootCauseReport find_root_causes(const kernels::GraphKernel& kernel,
                                 kernels::LabelPolicy policy,
                                 const std::vector<graph::EventGraph>& runs,
                                 const RootCauseConfig& config,
                                 ThreadPool& pool);

}  // namespace anacin::analysis

#include "analysis/root_cause.hpp"

#include <algorithm>
#include <map>

#include "graph/slicing.hpp"
#include "obs/obs.hpp"
#include "sim/types.hpp"
#include "support/error.hpp"

namespace anacin::analysis {

RootCauseReport find_root_causes(const kernels::GraphKernel& kernel,
                                 kernels::LabelPolicy policy,
                                 const std::vector<graph::EventGraph>& runs,
                                 const RootCauseConfig& config,
                                 ThreadPool& pool) {
  ANACIN_SPAN("analysis.root_cause");
  ANACIN_CHECK(runs.size() >= 2, "root-cause analysis needs >= 2 runs");
  obs::counter("analysis.root_cause_reports").add(1);
  ANACIN_CHECK(config.hot_fraction > 0.0 && config.hot_fraction <= 1.0,
               "hot_fraction must be in (0,1]");

  RootCauseReport report;
  report.profile =
      slice_profile(kernel, policy, runs, config.slice_window, pool);

  const auto peak = std::max_element(report.profile.distance.begin(),
                                     report.profile.distance.end());
  if (peak == report.profile.distance.end() || *peak <= 0.0) {
    return report;  // no divergence anywhere: nothing to attribute
  }
  const double threshold = *peak * config.hot_fraction;
  for (std::size_t s = 0; s < report.profile.distance.size(); ++s) {
    if (report.profile.distance[s] >= threshold) {
      report.hot_slices.push_back(s);
    }
  }

  // Identify *divergent* events: receive positions whose matched send
  // differs across runs. Tallying only these (rather than everything
  // co-located with a hot slice) keeps innocent callsites that merely share
  // logical time with a race out of the report.
  using Position = std::pair<std::int32_t, std::int64_t>;  // (rank, seq)
  std::map<Position, Position> first_match;
  std::map<Position, bool> divergent;
  for (const auto& run : runs) {
    for (const auto& [send_node, recv_node] : run.message_edges()) {
      const graph::EventNode& send = run.node(send_node);
      const graph::EventNode& recv = run.node(recv_node);
      const Position position{recv.rank, recv.seq};
      const Position match{send.rank, send.seq};
      const auto [it, inserted] = first_match.emplace(position, match);
      if (!inserted && it->second != match) divergent[position] = true;
    }
  }

  // Tally call paths of divergent events inside hot slices, across all
  // runs. A send counts as divergent when the receive it matched is.
  struct Tally {
    std::size_t occurrences = 0;
    std::size_t wildcard = 0;
  };
  std::map<std::string, Tally> tallies;
  std::size_t total = 0;
  for (const auto& run : runs) {
    const graph::SliceSet slices =
        graph::slice_by_lamport_window(run, config.slice_window);
    // Per-node divergence flags for this run.
    std::vector<bool> node_divergent(run.num_nodes(), false);
    for (const graph::EventNode& node : run.nodes()) {
      if (node.type != trace::EventType::kRecv) continue;
      const auto it = divergent.find({node.rank, node.seq});
      if (it != divergent.end() && it->second) {
        node_divergent[run.node_of(node.rank, node.seq)] = true;
      }
    }
    for (const auto& [send_node, recv_node] : run.message_edges()) {
      if (node_divergent[recv_node]) node_divergent[send_node] = true;
    }

    for (const std::size_t s : report.hot_slices) {
      if (s >= slices.num_slices) continue;
      for (const graph::NodeId v : slices.nodes_in_slice[s]) {
        const graph::EventNode& node = run.node(v);
        if (config.recvs_only && node.type != trace::EventType::kRecv) {
          continue;
        }
        if (node.type == trace::EventType::kInit ||
            node.type == trace::EventType::kFinalize) {
          continue;
        }
        if (!node_divergent[v]) continue;
        Tally& tally = tallies[run.callstacks().path(node.callstack_id)];
        ++tally.occurrences;
        if (node.type == trace::EventType::kRecv &&
            node.posted_source == sim::kAnySource) {
          ++tally.wildcard;
        }
        ++total;
      }
    }
  }

  report.callstacks.reserve(tallies.size());
  for (const auto& [path, tally] : tallies) {
    CallstackFrequency frequency;
    frequency.path = path;
    frequency.occurrences = tally.occurrences;
    frequency.frequency = total > 0 ? static_cast<double>(tally.occurrences) /
                                          static_cast<double>(total)
                                    : 0.0;
    frequency.wildcard_share =
        tally.occurrences > 0
            ? static_cast<double>(tally.wildcard) /
                  static_cast<double>(tally.occurrences)
            : 0.0;
    report.callstacks.push_back(std::move(frequency));
  }
  std::sort(report.callstacks.begin(), report.callstacks.end(),
            [](const CallstackFrequency& a, const CallstackFrequency& b) {
              if (a.frequency != b.frequency) return a.frequency > b.frequency;
              return a.path < b.path;
            });
  return report;
}

}  // namespace anacin::analysis

#pragma once

#include <vector>

#include "graph/event_graph.hpp"
#include "kernels/distance_matrix.hpp"
#include "kernels/kernel.hpp"
#include "support/thread_pool.hpp"

namespace anacin::analysis {

/// How a set of runs is reduced to a sample of kernel distances.
enum class DistanceReduction {
  /// Distance of each run to a jitter-free reference execution: N runs
  /// give N data points (the paper's 20-point violins).
  kToReference,
  /// All C(N,2) pairwise distances.
  kPairwise,
};

/// Measure the amount of non-determinism in a set of runs of the same
/// application: the paper's proxy metric.
struct NdMeasurement {
  std::vector<double> distances;
  DistanceReduction reduction = DistanceReduction::kToReference;
};

NdMeasurement measure_nd(const kernels::GraphKernel& kernel,
                         kernels::LabelPolicy policy,
                         const std::vector<graph::EventGraph>& runs,
                         const graph::EventGraph* reference,
                         DistanceReduction reduction, ThreadPool& pool);

/// Per-slice divergence profile across runs: for each logical-time slice,
/// the mean pairwise kernel distance between the runs' slice subgraphs.
/// Slices where the profile peaks are the "periods of highly
/// non-deterministic execution" of the paper's Fig. 8.
struct SliceProfile {
  std::uint64_t window = 0;
  /// Mean pairwise distance per slice index.
  std::vector<double> distance;
};

SliceProfile slice_profile(const kernels::GraphKernel& kernel,
                           kernels::LabelPolicy policy,
                           const std::vector<graph::EventGraph>& runs,
                           std::uint64_t slice_window, ThreadPool& pool);

}  // namespace anacin::analysis

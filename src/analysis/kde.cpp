#include "analysis/kde.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "support/error.hpp"

namespace anacin::analysis {

double silverman_bandwidth(std::span<const double> values) {
  ANACIN_CHECK(!values.empty(), "bandwidth of empty sample");
  const double sigma = stddev(values);
  const double iqr = quantile(values, 0.75) - quantile(values, 0.25);
  double spread = sigma;
  if (iqr > 0.0) spread = std::min(sigma, iqr / 1.34);
  if (spread <= 0.0) spread = std::max(sigma, iqr / 1.34);
  const double n = static_cast<double>(values.size());
  double bandwidth = 0.9 * spread * std::pow(n, -0.2);
  if (bandwidth <= 0.0) {
    // Degenerate sample: fall back to a sliver proportional to the scale
    // of the data (or 1 if everything is exactly zero).
    const double scale =
        std::abs(*std::max_element(values.begin(), values.end(),
                                   [](double a, double b) {
                                     return std::abs(a) < std::abs(b);
                                   }));
    bandwidth = scale > 0.0 ? scale * 0.01 : 0.01;
  }
  return bandwidth;
}

ViolinData gaussian_kde(std::span<const double> values,
                        std::size_t grid_points, double bandwidth) {
  ANACIN_CHECK(!values.empty(), "kde of empty sample");
  ANACIN_CHECK(grid_points >= 2, "kde needs at least two grid points");
  ViolinData violin;
  violin.summary = summarize(values);
  violin.bandwidth = bandwidth > 0.0 ? bandwidth : silverman_bandwidth(values);

  const double lo = violin.summary.min - 2.0 * violin.bandwidth;
  const double hi = violin.summary.max + 2.0 * violin.bandwidth;
  const double step = (hi - lo) / static_cast<double>(grid_points - 1);

  violin.grid.resize(grid_points);
  violin.density.resize(grid_points);
  const double norm =
      1.0 / (static_cast<double>(values.size()) * violin.bandwidth *
             std::sqrt(2.0 * std::numbers::pi));
  for (std::size_t g = 0; g < grid_points; ++g) {
    const double x = lo + step * static_cast<double>(g);
    double density = 0.0;
    for (const double v : values) {
      const double z = (x - v) / violin.bandwidth;
      density += std::exp(-0.5 * z * z);
    }
    violin.grid[g] = x;
    violin.density[g] = density * norm;
  }
  return violin;
}

}  // namespace anacin::analysis

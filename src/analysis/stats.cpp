#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>

#include "support/error.hpp"

namespace anacin::analysis {

double mean(std::span<const double> values) {
  ANACIN_CHECK(!values.empty(), "mean of empty sample");
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double sum_sq = 0.0;
  for (const double v : values) sum_sq += (v - m) * (v - m);
  return sum_sq / static_cast<double>(values.size() - 1);
}

double stddev(std::span<const double> values) {
  return std::sqrt(variance(values));
}

double quantile(std::span<const double> values, double q) {
  ANACIN_CHECK(!values.empty(), "quantile of empty sample");
  ANACIN_CHECK(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) return sorted.back();
  return sorted[lower] * (1.0 - fraction) + sorted[lower + 1] * fraction;
}

double median(std::span<const double> values) {
  return quantile(values, 0.5);
}

Summary summarize(std::span<const double> values) {
  ANACIN_CHECK(!values.empty(), "summary of empty sample");
  Summary summary;
  summary.count = values.size();
  summary.mean = mean(values);
  summary.stddev = stddev(values);
  summary.min = *std::min_element(values.begin(), values.end());
  summary.max = *std::max_element(values.begin(), values.end());
  summary.q1 = quantile(values, 0.25);
  summary.median = quantile(values, 0.5);
  summary.q3 = quantile(values, 0.75);
  return summary;
}

namespace {

/// Average ranks (1-based), with ties sharing their mean rank.
std::vector<double> average_ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double shared = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = shared;
    i = j + 1;
  }
  return ranks;
}

double normal_sf(double z) {
  // Survival function of the standard normal.
  return 0.5 * std::erfc(z / std::numbers::sqrt2);
}

}  // namespace

double spearman(std::span<const double> x, std::span<const double> y) {
  ANACIN_CHECK(x.size() == y.size(), "spearman needs equal-length samples");
  ANACIN_CHECK(x.size() >= 2, "spearman needs at least two points");
  const std::vector<double> rx = average_ranks(x);
  const std::vector<double> ry = average_ranks(y);
  const double mx = mean(rx);
  const double my = mean(ry);
  double cov = 0.0;
  double vx = 0.0;
  double vy = 0.0;
  for (std::size_t i = 0; i < rx.size(); ++i) {
    cov += (rx[i] - mx) * (ry[i] - my);
    vx += (rx[i] - mx) * (rx[i] - mx);
    vy += (ry[i] - my) * (ry[i] - my);
  }
  if (vx == 0.0 || vy == 0.0) return 0.0;  // constant input: undefined, use 0
  return cov / std::sqrt(vx * vy);
}

MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                 std::span<const double> b) {
  ANACIN_CHECK(!a.empty() && !b.empty(), "Mann-Whitney needs two samples");
  const std::size_t na = a.size();
  const std::size_t nb = b.size();
  std::vector<double> combined;
  combined.reserve(na + nb);
  combined.insert(combined.end(), a.begin(), a.end());
  combined.insert(combined.end(), b.begin(), b.end());
  const std::vector<double> ranks = average_ranks(combined);

  double rank_sum_a = 0.0;
  for (std::size_t i = 0; i < na; ++i) rank_sum_a += ranks[i];
  const double u_a =
      rank_sum_a - static_cast<double>(na) * (static_cast<double>(na) + 1) / 2.0;
  const double u = std::min(u_a, static_cast<double>(na * nb) - u_a);

  // Tie correction for the variance.
  std::vector<double> sorted(combined);
  std::sort(sorted.begin(), sorted.end());
  double tie_term = 0.0;
  std::size_t i = 0;
  const std::size_t n = sorted.size();
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && sorted[j + 1] == sorted[i]) ++j;
    const double t = static_cast<double>(j - i + 1);
    tie_term += t * t * t - t;
    i = j + 1;
  }
  const double n_total = static_cast<double>(n);
  const double mu = static_cast<double>(na * nb) / 2.0;
  const double sigma_sq = static_cast<double>(na) * static_cast<double>(nb) /
                          12.0 *
                          ((n_total + 1.0) -
                           tie_term / (n_total * (n_total - 1.0)));

  MannWhitneyResult result;
  result.u_statistic = u;
  if (sigma_sq <= 0.0) {
    result.z_score = 0.0;
    result.p_value = 1.0;
    return result;
  }
  // Continuity correction.
  result.z_score = (u - mu + 0.5) / std::sqrt(sigma_sq);
  result.p_value = std::min(1.0, 2.0 * normal_sf(std::abs(result.z_score)));
  return result;
}

}  // namespace anacin::analysis

#include "analysis/clustering.hpp"

#include <algorithm>
#include <numeric>

#include "support/error.hpp"

namespace anacin::analysis {

namespace {

/// Union-find with path compression.
class DisjointSets {
public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

private:
  std::vector<std::size_t> parent_;
};

}  // namespace

Clustering single_linkage(const kernels::DistanceMatrix& distances,
                          double threshold) {
  ANACIN_CHECK(distances.size > 0, "clustering of empty distance matrix");
  ANACIN_CHECK(threshold >= 0.0, "threshold must be non-negative");
  const std::size_t n = distances.size;

  DisjointSets sets(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (distances.at(i, j) <= threshold) sets.unite(i, j);
    }
  }

  Clustering clustering;
  clustering.cluster_of.assign(n, 0);
  std::vector<std::size_t> root_to_cluster(n, n);  // n = unassigned
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = sets.find(i);
    if (root_to_cluster[root] == n) {
      root_to_cluster[root] = clustering.clusters.size();
      clustering.clusters.emplace_back();
    }
    const std::size_t cluster = root_to_cluster[root];
    clustering.cluster_of[i] = cluster;
    clustering.clusters[cluster].push_back(i);
  }
  return clustering;
}

double largest_gap_threshold(const kernels::DistanceMatrix& distances) {
  ANACIN_CHECK(distances.size > 0, "empty distance matrix");
  std::vector<double> flat = distances.upper_triangle();
  if (flat.size() < 2) return flat.empty() ? 0.0 : flat.front();
  std::sort(flat.begin(), flat.end());
  double best_gap = 0.0;
  double threshold = 0.0;
  for (std::size_t i = 1; i < flat.size(); ++i) {
    const double gap = flat[i] - flat[i - 1];
    if (gap > best_gap) {
      best_gap = gap;
      // Cut in the middle of the largest gap.
      threshold = flat[i - 1] + gap / 2.0;
    }
  }
  return best_gap > 0.0 ? threshold : 0.0;
}

}  // namespace anacin::analysis

#include "analysis/resampling.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/stats.hpp"
#include "support/error.hpp"

namespace anacin::analysis {

BootstrapCi bootstrap_ci(std::span<const double> values,
                         const Statistic& statistic, double confidence,
                         std::size_t resamples, std::uint64_t seed) {
  ANACIN_CHECK(!values.empty(), "bootstrap of empty sample");
  ANACIN_CHECK(confidence > 0.0 && confidence < 1.0,
               "confidence must be in (0,1), got " << confidence);
  ANACIN_CHECK(resamples >= 10, "need at least 10 resamples");

  BootstrapCi ci;
  ci.point_estimate = statistic(values);

  Rng rng(seed);
  std::vector<double> resample(values.size());
  std::vector<double> estimates;
  estimates.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    for (double& slot : resample) {
      slot = values[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(values.size()) - 1))];
    }
    estimates.push_back(statistic(resample));
  }
  const double alpha = 1.0 - confidence;
  ci.lower = quantile(estimates, alpha / 2.0);
  ci.upper = quantile(estimates, 1.0 - alpha / 2.0);
  return ci;
}

double permutation_test(std::span<const double> a, std::span<const double> b,
                        const Statistic& statistic, std::size_t permutations,
                        std::uint64_t seed) {
  ANACIN_CHECK(!a.empty() && !b.empty(), "permutation test needs two samples");
  ANACIN_CHECK(permutations >= 10, "need at least 10 permutations");

  const double observed =
      std::abs(statistic(a) - statistic(b));

  std::vector<double> pooled;
  pooled.reserve(a.size() + b.size());
  pooled.insert(pooled.end(), a.begin(), a.end());
  pooled.insert(pooled.end(), b.begin(), b.end());

  Rng rng(seed);
  std::size_t at_least_as_extreme = 0;
  for (std::size_t p = 0; p < permutations; ++p) {
    rng.shuffle(pooled);
    const std::span<const double> pseudo_a(pooled.data(), a.size());
    const std::span<const double> pseudo_b(pooled.data() + a.size(),
                                           b.size());
    if (std::abs(statistic(pseudo_a) - statistic(pseudo_b)) >=
        observed - 1e-15) {
      ++at_least_as_extreme;
    }
  }
  // +1 correction keeps the p-value strictly positive (the identity
  // permutation always reproduces the observed statistic).
  return (static_cast<double>(at_least_as_extreme) + 1.0) /
         (static_cast<double>(permutations) + 1.0);
}

double cliffs_delta(std::span<const double> a, std::span<const double> b) {
  ANACIN_CHECK(!a.empty() && !b.empty(), "cliffs_delta needs two samples");
  // O((n+m) log(n+m)) via sorting b and binary-searching each a.
  std::vector<double> sorted_b(b.begin(), b.end());
  std::sort(sorted_b.begin(), sorted_b.end());
  std::int64_t a_wins = 0;  // pairs with a > b
  std::int64_t b_wins = 0;  // pairs with a < b
  for (const double value : a) {
    const auto lo = std::lower_bound(sorted_b.begin(), sorted_b.end(), value);
    const auto hi = std::upper_bound(sorted_b.begin(), sorted_b.end(), value);
    a_wins += lo - sorted_b.begin();  // b entries strictly below value
    b_wins += sorted_b.end() - hi;    // b entries strictly above value
  }
  const double n_pairs =
      static_cast<double>(a.size()) * static_cast<double>(b.size());
  return (static_cast<double>(a_wins) - static_cast<double>(b_wins)) / n_pairs;
}

}  // namespace anacin::analysis

#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "sim/types.hpp"
#include "trace/trace.hpp"

namespace anacin::realtime {

/// Native-threads execution backend.
///
/// Where `sim::run_simulation` produces *controlled* non-determinism from a
/// seeded jitter model, this backend runs each rank on a real std::thread
/// with real mutex-protected mailboxes: message races resolve however the
/// OS scheduler happens to interleave the threads. It produces the same
/// trace::Trace as the simulator, so the entire analysis pipeline (event
/// graphs, kernel distances, root causes) applies unchanged — demonstrating
/// that the course's method measures genuine platform non-determinism, not
/// an artifact of the simulator.
///
/// The API is a deliberately small subset of sim::Comm: blocking send
/// (mailboxes are unbounded, so sends never block), blocking receive with
/// kAnySource/kAnyTag wildcards, a process barrier, local compute, and
/// callsite frames for root-cause attribution.
class Comm;
using RankProgram = std::function<void(Comm&)>;

struct RtConfig {
  int num_ranks = 2;
  /// A receive that waits longer than this fails the run with
  /// DeadlockError (a hung test is worse than a failed one).
  std::uint64_t recv_timeout_ms = 10'000;

  void validate() const;
};

/// RAII callsite frame (same role as sim::CallScope).
class FrameScope {
public:
  FrameScope(FrameScope&& other) noexcept : comm_(other.comm_) {
    other.comm_ = nullptr;
  }
  FrameScope(const FrameScope&) = delete;
  FrameScope& operator=(const FrameScope&) = delete;
  FrameScope& operator=(FrameScope&&) = delete;
  ~FrameScope();

private:
  friend class Comm;
  explicit FrameScope(Comm* comm) : comm_(comm) {}
  Comm* comm_;
};

namespace detail {
class Runtime;
}

class Comm {
public:
  int rank() const { return rank_; }
  int size() const;

  void send(int dest, int tag = 0, sim::Payload payload = {});
  sim::RecvResult recv(int source = sim::kAnySource, int tag = sim::kAnyTag);
  /// Synchronize all ranks.
  void barrier();
  /// Real local work (sleeps for the given wall-clock duration).
  void compute(double microseconds);
  [[nodiscard]] FrameScope scoped_frame(std::string_view name);

private:
  friend class detail::Runtime;
  friend class FrameScope;
  Comm(detail::Runtime* runtime, int rank)
      : runtime_(runtime), rank_(rank) {}
  void pop_frame();

  detail::Runtime* runtime_;
  int rank_;
};

/// Run `program` on real threads; returns the recorded trace.
/// NOT deterministic: repeated calls may produce different matchings —
/// that is the point.
trace::Trace run_threads(const RtConfig& config, const RankProgram& program);

}  // namespace anacin::realtime

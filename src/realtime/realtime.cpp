#include "realtime/realtime.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "support/error.hpp"
#include "trace/callstack.hpp"

namespace anacin::realtime {

void RtConfig::validate() const {
  ANACIN_CHECK(num_ranks >= 1, "need at least one rank");
  ANACIN_CHECK(recv_timeout_ms >= 1, "timeout must be positive");
}

namespace detail {

using Clock = std::chrono::steady_clock;

struct Msg {
  int src = -1;
  int tag = 0;
  sim::Payload payload;
  std::int64_t src_seq = -1;
  std::uint32_t size = 0;
};

struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Msg> queue;
};

/// Per-rank recorder; events carry their call-path as a string until the
/// final single-threaded assembly interns them into the shared registry.
struct Recorder {
  std::vector<trace::Event> events;
  std::vector<std::string> paths;
  std::vector<std::string> frames;

  std::int64_t append(trace::Event event, std::string path) {
    events.push_back(event);
    paths.push_back(std::move(path));
    return static_cast<std::int64_t>(events.size()) - 1;
  }

  std::string path_with(std::string_view mpi_function) const {
    std::string path = trace::join_frames(frames);
    if (!path.empty()) path += '>';
    path += mpi_function;
    return path;
  }
};

class Runtime {
public:
  Runtime(const RtConfig& config, const RankProgram& program)
      : config_(config),
        program_(program),
        mailboxes_(static_cast<std::size_t>(config.num_ranks)),
        recorders_(static_cast<std::size_t>(config.num_ranks)),
        start_(Clock::now()) {}

  int num_ranks() const { return config_.num_ranks; }

  double now_us() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

  void fail(std::exception_ptr error) {
    {
      const std::lock_guard<std::mutex> lock(failure_mutex_);
      if (!failure_) failure_ = error;
      failed_.store(true);
    }
    // Take each waiter's mutex before notifying so a waiter cannot check
    // its predicate, miss the flag, and sleep through the notification.
    for (auto& mailbox : mailboxes_) {
      const std::lock_guard<std::mutex> lock(mailbox.mutex);
      mailbox.cv.notify_all();
    }
    {
      const std::lock_guard<std::mutex> lock(barrier_mutex_);
      barrier_cv_.notify_all();
    }
  }

  struct Aborted {};

  void check_failed() const {
    if (failed_.load()) throw Aborted{};
  }

  void send(int src, int dest, int tag, sim::Payload payload) {
    ANACIN_CHECK(dest >= 0 && dest < num_ranks(),
                 "send to out-of-range rank " << dest);
    ANACIN_CHECK(tag >= 0, "tag must be non-negative");
    Recorder& recorder = recorders_[static_cast<std::size_t>(src)];
    const auto size = static_cast<std::uint32_t>(payload.size());

    trace::Event event;
    event.type = trace::EventType::kSend;
    event.rank = src;
    event.peer = dest;
    event.tag = tag;
    event.size_bytes = size;
    event.t_start = now_us();
    event.t_end = event.t_start;
    const std::int64_t seq =
        recorder.append(event, recorder.path_with("MPI_Send"));

    Mailbox& mailbox = mailboxes_[static_cast<std::size_t>(dest)];
    {
      const std::lock_guard<std::mutex> lock(mailbox.mutex);
      mailbox.queue.push_back(Msg{src, tag, std::move(payload), seq, size});
    }
    mailbox.cv.notify_all();
  }

  sim::RecvResult recv(int rank, int source, int tag) {
    ANACIN_CHECK(source == sim::kAnySource ||
                     (source >= 0 && source < num_ranks()),
                 "receive from out-of-range rank " << source);
    Recorder& recorder = recorders_[static_cast<std::size_t>(rank)];
    Mailbox& mailbox = mailboxes_[static_cast<std::size_t>(rank)];
    const double post_time = now_us();

    Msg msg;
    {
      std::unique_lock<std::mutex> lock(mailbox.mutex);
      const auto deadline = Clock::now() +
                            std::chrono::milliseconds(config_.recv_timeout_ms);
      auto matching = [&]() -> std::deque<Msg>::iterator {
        for (auto it = mailbox.queue.begin(); it != mailbox.queue.end();
             ++it) {
          if ((source == sim::kAnySource || source == it->src) &&
              (tag == sim::kAnyTag || tag == it->tag)) {
            return it;
          }
        }
        return mailbox.queue.end();
      };
      for (;;) {
        check_failed();
        const auto it = matching();
        if (it != mailbox.queue.end()) {
          msg = std::move(*it);
          mailbox.queue.erase(it);
          break;
        }
        if (mailbox.cv.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
          throw DeadlockError(
              "realtime: rank " + std::to_string(rank) +
              " timed out in recv(source=" +
              (source == sim::kAnySource ? std::string("ANY")
                                         : std::to_string(source)) +
              ", tag=" +
              (tag == sim::kAnyTag ? std::string("ANY")
                                   : std::to_string(tag)) +
              ") after " + std::to_string(config_.recv_timeout_ms) + "ms");
        }
      }
    }

    trace::Event event;
    event.type = trace::EventType::kRecv;
    event.rank = rank;
    event.peer = msg.src;
    event.tag = msg.tag;
    event.size_bytes = msg.size;
    event.t_start = post_time;
    event.t_end = now_us();
    event.matched_rank = msg.src;
    event.matched_seq = msg.src_seq;
    event.posted_source = source;
    event.posted_tag = tag;
    recorder.append(event, recorder.path_with("MPI_Recv"));
    return sim::RecvResult{msg.src, msg.tag, std::move(msg.payload),
                           event.t_end};
  }

  void barrier() {
    std::unique_lock<std::mutex> lock(barrier_mutex_);
    const std::uint64_t generation = barrier_generation_;
    if (++barrier_arrivals_ == num_ranks()) {
      barrier_arrivals_ = 0;
      ++barrier_generation_;
      barrier_cv_.notify_all();
      return;
    }
    barrier_cv_.wait(lock, [&] {
      return barrier_generation_ != generation || failed_.load();
    });
    check_failed();
  }

  void push_frame(int rank, std::string frame) {
    recorders_[static_cast<std::size_t>(rank)].frames.push_back(
        std::move(frame));
  }
  void pop_frame(int rank) {
    auto& frames = recorders_[static_cast<std::size_t>(rank)].frames;
    ANACIN_CHECK(!frames.empty(), "pop_frame with empty stack");
    frames.pop_back();
  }

  trace::Trace run() {
    // Init events at t=0.
    for (int r = 0; r < num_ranks(); ++r) {
      trace::Event event;
      event.type = trace::EventType::kInit;
      event.rank = r;
      recorders_[static_cast<std::size_t>(r)].append(event, "MPI_Init");
    }

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(num_ranks()));
    for (int r = 0; r < num_ranks(); ++r) {
      threads.emplace_back([this, r] {
        try {
          Comm comm(this, r);
          program_(comm);
          trace::Event event;
          event.type = trace::EventType::kFinalize;
          event.rank = r;
          event.t_start = now_us();
          event.t_end = event.t_start;
          recorders_[static_cast<std::size_t>(r)].append(event,
                                                         "MPI_Finalize");
        } catch (const Aborted&) {
          // another rank failed first; just unwind
        } catch (...) {
          fail(std::current_exception());
        }
      });
    }
    for (auto& thread : threads) thread.join();
    if (failure_) std::rethrow_exception(failure_);

    // Single-threaded assembly: intern paths, build the trace.
    trace::Trace trace(num_ranks(), 1);
    for (int r = 0; r < num_ranks(); ++r) {
      Recorder& recorder = recorders_[static_cast<std::size_t>(r)];
      for (std::size_t i = 0; i < recorder.events.size(); ++i) {
        trace::Event event = recorder.events[i];
        event.callstack_id = trace.callstacks().intern(recorder.paths[i]);
        trace.append(event);
      }
    }
    return trace;
  }

private:
  RtConfig config_;
  const RankProgram& program_;
  std::vector<Mailbox> mailboxes_;
  std::vector<Recorder> recorders_;
  Clock::time_point start_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrivals_ = 0;
  std::uint64_t barrier_generation_ = 0;

  std::atomic<bool> failed_{false};
  std::mutex failure_mutex_;
  std::exception_ptr failure_;
};

}  // namespace detail

FrameScope::~FrameScope() {
  if (comm_ != nullptr) comm_->pop_frame();
}

int Comm::size() const { return runtime_->num_ranks(); }

void Comm::send(int dest, int tag, sim::Payload payload) {
  runtime_->send(rank_, dest, tag, std::move(payload));
}

sim::RecvResult Comm::recv(int source, int tag) {
  return runtime_->recv(rank_, source, tag);
}

void Comm::barrier() { runtime_->barrier(); }

void Comm::compute(double microseconds) {
  ANACIN_CHECK(microseconds >= 0, "compute time must be non-negative");
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::micro>(microseconds));
}

FrameScope Comm::scoped_frame(std::string_view name) {
  runtime_->push_frame(rank_, std::string(name));
  return FrameScope(this);
}

void Comm::pop_frame() { runtime_->pop_frame(rank_); }

trace::Trace run_threads(const RtConfig& config, const RankProgram& program) {
  config.validate();
  ANACIN_CHECK(program != nullptr, "program must be callable");
  detail::Runtime runtime(config, program);
  return runtime.run();
}

}  // namespace anacin::realtime

#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace anacin::net {

/// The scheduler's unit lease table — the bookkeeping that makes "agent
/// went quiet" survivable without double-running work. Every dispatched
/// unit holds exactly one lease naming its owning session and a deadline;
/// every frame received from the owner renews the deadline. A broken
/// connection does NOT release the lease: the owning execute() call waits
/// for the session to reconnect (session tokens, see server.hpp) and
/// re-dispatches on the fresh connection. Only the lease *expiring* —
/// no frames and no reconnect for the full lease window — declares the
/// unit lost and re-queues it on another agent. That asymmetry is the
/// point: a blip costs one reconnect, not a re-simulation, while a truly
/// dead agent costs at most one lease window.
///
/// Thread model: one execute() thread owns each lease end to end; the
/// internal mutex only guards cross-thread reads (size, the observability
/// snapshot).
class LeaseTable {
 public:
  using Clock = std::chrono::steady_clock;

  /// `lease_ms` is the expiry window measured from the last renewal.
  explicit LeaseTable(double lease_ms);

  double lease_ms() const { return lease_ms_; }

  /// Open a lease for `unit_id` owned by session `token` (attempt 1).
  void acquire(const std::string& unit_id, const std::string& token);

  /// A frame arrived from the owner: push the deadline out.
  void renew(const std::string& unit_id);

  /// The unit was re-dispatched (same session after a reconnect, or a
  /// different session after expiry never happens — expiry releases).
  /// Fresh deadline, attempt count bumped, owner updated.
  void rebind(const std::string& unit_id, const std::string& token);

  bool expired(const std::string& unit_id) const;
  Clock::time_point deadline(const std::string& unit_id) const;
  /// Dispatch attempts so far (1 = first dispatch).
  int attempts(const std::string& unit_id) const;

  /// Close the lease; returns its total age in milliseconds (feeds the
  /// net.lease_age_ms histogram).
  double release(const std::string& unit_id);

  /// Leases currently open (== units in flight on the fabric).
  std::size_t size() const;

 private:
  struct Entry {
    std::string owner;
    Clock::time_point acquired;
    Clock::time_point deadline;
    int attempts = 0;
  };

  Clock::duration window() const;

  double lease_ms_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> leases_;
};

}  // namespace anacin::net

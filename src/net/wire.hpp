#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "store/hash.hpp"
#include "support/json.hpp"

namespace anacin::net {

/// Payload helpers for the object-shipping frames (kFetch / kObject /
/// kMissing / kPublish) of the scheduler↔agent protocol. Objects travel
/// as their full on-disk envelope (store/codec.hpp: magic, version, kind,
/// checksum, payload), so the receiver validates exactly what it would
/// validate on a local read and corrupted transfers are rejected, never
/// stored. See docs/DISTRIBUTED.md.

/// kObject / kPublish payload: 32-char hex digest + raw envelope bytes.
std::string encode_object_payload(const store::Digest& key,
                                  std::span<const std::uint8_t> bytes);

struct ObjectPayload {
  store::Digest key;
  /// View into the frame payload's envelope bytes — valid only while the
  /// frame is alive.
  std::string_view bytes;
};

/// Decode a kObject / kPublish payload; nullopt (with `error` filled) when
/// the payload is too short or the digest is malformed.
std::optional<ObjectPayload> decode_object_payload(std::string_view payload,
                                                   std::string* error);

/// kHello payload: who the agent is, which frame protocol it speaks
/// (proc/protocol.hpp — the handshake itself always travels as v1), and,
/// on a reconnect, the session token kHelloOk issued last time. The
/// scheduler answers kHelloOk with {"id": n, "proto": agreed, "token":
/// "..."} — or {"error": "..."} when the versions are incompatible. The
/// id names the per-agent latency histogram (net.agent.<id>.unit_ms).
json::Value make_hello(const std::string& name, std::uint16_t proto,
                       const std::string& token = {});

}  // namespace anacin::net

#include "net/server.hpp"

#include <algorithm>
#include <chrono>
#include <span>
#include <sstream>
#include <utility>

#include "net/wire.hpp"
#include "obs/obs.hpp"
#include "store/codec.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace anacin::net {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Poll granularity of the per-unit serve loop: short enough that stall
/// detection and shutdown stay responsive, long enough to stay off the
/// scheduler's profile.
constexpr int kServePollMs = 100;

/// Budget for the kHello/kHelloOk exchange on a fresh connection.
constexpr int kHandshakeTimeoutMs = 5'000;

/// A unit is re-dispatched to its session after every reconnect; this
/// bounds how many times before the scheduler gives up on the session
/// (a pathological agent that reconnects but never finishes would
/// otherwise renew its lease forever).
constexpr int kMaxDispatchAttempts = 5;

struct InflightGuard {
  InflightGuard() { obs::gauge("net.units_inflight").add(1.0); }
  ~InflightGuard() { obs::gauge("net.units_inflight").add(-1.0); }
};

std::string hex64(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string text(16, '0');
  for (int i = 15; i >= 0; --i) {
    text[static_cast<std::size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return text;
}

}  // namespace

AgentServer::AgentServer(AgentServerConfig config, store::ArtifactStore& store)
    : config_(std::move(config)),
      store_(store),
      listener_(config_.bind_host, config_.port),
      leases_(config_.unit_lease_ms) {
  // Tokens only need uniqueness across the schedulers an agent might meet
  // (an agent resuming against a *restarted* scheduler must not collide
  // into someone else's session), not unpredictability.
  token_salt_ = hash_combine(
      static_cast<std::uint64_t>(Clock::now().time_since_epoch().count()),
      reinterpret_cast<std::uintptr_t>(this));
  acceptor_ = std::thread([this] { accept_loop(); });
}

AgentServer::~AgentServer() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();
  // kShutdown tells each agent the campaign is over — distinct from a bare
  // EOF, which session-resume agents would treat as a blip and reconnect
  // through. Then close; either way no remote process outlives us.
  std::vector<SessionPtr> all;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [token, session] : sessions_) all.push_back(session);
    sessions_.clear();
    idle_.clear();
  }
  for (const SessionPtr& session : all) {
    if (session->conn) {
      session->conn->send_frame(proc::FrameType::kShutdown, {});
      session->conn->close();
    }
  }
  idle_cv_.notify_all();
  reattach_cv_.notify_all();
  inflight_cv_.notify_all();
}

std::uint16_t AgentServer::port() const { return listener_.port(); }

std::size_t AgentServer::agent_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

bool AgentServer::wait_for_agents(std::size_t count, int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto ready = [&] { return sessions_.size() >= count; };
  if (timeout_ms < 0) {
    idle_cv_.wait(lock, ready);
    return true;
  }
  return idle_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           ready);
}

void AgentServer::accept_loop() {
  while (true) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    auto conn = listener_.accept(kServePollMs);
    if (!conn) continue;
    // Registration is synchronous and cheap, so the accept thread handles
    // it inline: one kHello in, one kHelloOk out.
    register_connection(std::move(conn));
  }
}

void AgentServer::register_connection(std::unique_ptr<TcpConnection> raw) {
  std::unique_ptr<Connection> owned =
      maybe_wrap_chaos(std::move(raw), config_.chaos);
  std::shared_ptr<Connection> conn(std::move(owned));

  // The handshake always travels as v1 frames — the framing every peer
  // version can parse — and carries the version claim as data.
  const proc::ReadResult hello = conn->recv_frame(kHandshakeTimeoutMs);
  if (!hello || hello.frame.type != proc::FrameType::kHello) return;

  std::string name;
  std::string token;
  std::uint16_t theirs = proc::kProtocolV1;  // absent field = legacy peer
  try {
    const json::Value doc = json::parse(hello.frame.payload);
    if (const json::Value* field = doc.find("name")) {
      name = field->as_string();
    }
    if (const json::Value* field = doc.find("token")) {
      token = field->as_string();
    }
    if (const json::Value* field = doc.find("proto")) {
      theirs = static_cast<std::uint16_t>(field->as_number());
    }
  } catch (const std::exception&) {
    return;  // malformed registration: drop silently
  }

  if (theirs < proc::kProtocolV1 || theirs > proc::kProtocolVersion) {
    // A peer from a different release: refuse loudly (the agent surfaces
    // this as ProtocolVersionError) instead of letting frame CRCs fail
    // one by one.
    obs::counter("net.version_rejects").add(1);
    json::Value refusal = json::Value::object();
    refusal.set("error", "unsupported frame protocol version " +
                             std::to_string(theirs) + " (this scheduler "
                             "speaks " +
                             std::to_string(proc::kProtocolV1) + ".." +
                             std::to_string(proc::kProtocolVersion) + ")");
    conn->send_frame(proc::FrameType::kHelloOk, refusal.dump());
    conn->close();
    return;
  }
  const std::uint16_t agreed = std::min(theirs, proc::kProtocolVersion);

  // Token resume: splice the fresh connection into the existing session
  // and wake whichever execute() was waiting out the disconnect.
  if (!token.empty()) {
    SessionPtr session;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto found = sessions_.find(token);
      if (found != sessions_.end()) session = found->second;
    }
    if (session) {
      json::Value welcome = json::Value::object();
      welcome.set("id", static_cast<double>(session->id));
      welcome.set("token", session->token);
      welcome.set("proto", static_cast<double>(agreed));
      // Counted at handshake-accept: the agent holds the welcome the
      // moment this send returns, so telemetry must already agree. The
      // splice stays after the send — a dispatcher waking on the new
      // connection must not race a kRequest ahead of the kHelloOk.
      obs::counter("net.sessions_resumed").add(1);
      if (!conn->send_frame(proc::FrameType::kHelloOk, welcome.dump())) {
        return;
      }
      conn->set_version(agreed);
      std::shared_ptr<Connection> old;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        old = std::move(session->conn);
        session->conn = conn;
        ++session->generation;
      }
      if (old) old->close();
      reattach_cv_.notify_all();
      idle_cv_.notify_all();
      return;
    }
    // Unknown token (scheduler restarted since it was issued): fall
    // through and register the agent as a brand-new session.
  }

  auto session = std::make_shared<Session>();
  session->name = name;
  session->conn = conn;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    session->id = next_agent_id_++;
    session->token = hex64(hash_combine(
        token_salt_, static_cast<std::uint64_t>(session->id) + 1));
  }
  if (session->name.empty()) {
    session->name = "agent-" + std::to_string(session->id);
  }
  json::Value welcome = json::Value::object();
  welcome.set("id", static_cast<double>(session->id));
  welcome.set("token", session->token);
  welcome.set("proto", static_cast<double>(agreed));
  // Register BEFORE sending the welcome: the instant the agent holds its
  // token it may disconnect and resume with it, and that reconnect must
  // find the session. Going idle waits until the send succeeds, though —
  // a dispatcher must not race a kRequest ahead of the kHelloOk.
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    sessions_[session->token] = session;
  }
  if (!conn->send_frame(proc::FrameType::kHelloOk, welcome.dump())) {
    const std::lock_guard<std::mutex> lock(mutex_);
    sessions_.erase(session->token);
    return;
  }
  conn->set_version(agreed);
  obs::counter("net.agents_connected").add(1);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    idle_.push_back(session);
  }
  idle_cv_.notify_all();
}

AgentServer::SessionPtr AgentServer::checkout(const std::string& unit_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const bool got = idle_cv_.wait_for(
      lock,
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double, std::milli>(
              config_.checkout_timeout_ms)),
      [&] { return !idle_.empty() || stopping_; });
  if (!got || stopping_ || idle_.empty()) {
    const std::size_t registered = sessions_.size();
    lock.unlock();
    // Transient on purpose: the supervisor's retries each wait the full
    // checkout budget again, giving a drained fleet time to refill.
    UnitTriage triage;
    triage.disposition = "crash";
    throw WorkerCrashError("no agent available for unit '" + unit_id +
                               "' within " +
                               std::to_string(config_.checkout_timeout_ms) +
                               " ms (registered agents: " +
                               std::to_string(registered) + ")",
                           std::move(triage));
  }
  SessionPtr session = std::move(idle_.front());
  idle_.pop_front();
  session->busy = true;
  return session;
}

void AgentServer::checkin(const SessionPtr& session) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    session->busy = false;
    if (!stopping_) {
      idle_.push_back(session);
      idle_cv_.notify_all();
      return;
    }
    sessions_.erase(session->token);
  }
  if (session->conn) {
    session->conn->send_frame(proc::FrameType::kShutdown, {});
    session->conn->close();
  }
}

void AgentServer::drop_session(const SessionPtr& session) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    sessions_.erase(session->token);
    for (auto it = idle_.begin(); it != idle_.end(); ++it) {
      if ((*it)->token == session->token) {
        idle_.erase(it);
        break;
      }
    }
  }
  if (session->conn) session->conn->close();
  obs::counter("net.agent_disconnects").add(1);
}

bool AgentServer::await_reconnect(const SessionPtr& session,
                                  std::uint64_t seen,
                                  const std::string& unit_id) {
  obs::counter("net.conn_drops").add(1);
  const auto deadline = leases_.deadline(unit_id);
  std::unique_lock<std::mutex> lock(mutex_);
  reattach_cv_.wait_until(lock, deadline, [&] {
    return stopping_ || session->generation != seen;
  });
  return !stopping_ && session->generation != seen;
}

void AgentServer::expire_and_throw(const SessionPtr& session,
                                   const std::string& unit_id,
                                   const std::string& reason) {
  const int attempts = leases_.attempts(unit_id);
  leases_.release(unit_id);
  obs::counter("net.leases_expired").add(1);
  drop_session(session);
  UnitTriage triage;
  triage.disposition = "crash";
  throw WorkerCrashError("agent '" + session->name + "' executing unit '" +
                             unit_id + "': " + reason + " (dispatch attempts: " +
                             std::to_string(attempts) +
                             "); the unit will be re-queued",
                         std::move(triage));
}

void AgentServer::serve_fetch(Connection& conn, const std::string& agent_name,
                              const std::string& payload) {
  const auto key = store::Digest::from_hex(payload);
  if (!key) {
    throw ParseError("agent '" + agent_name + "' fetched a malformed digest");
  }
  const store::ObjectBytes bytes = store_.objects().get(*key);
  if (!bytes) {
    conn.send_frame(proc::FrameType::kMissing, payload);
    return;
  }
  conn.send_frame(proc::FrameType::kObject,
                  encode_object_payload(*key, *bytes));
  obs::counter("net.objects_shipped").add(1);
}

void AgentServer::absorb_publish(const std::string& agent_name,
                                 const std::string& payload) {
  std::string error;
  const auto object = decode_object_payload(payload, &error);
  if (!object) {
    throw ParseError("agent '" + agent_name + "' published a bad " +
                     "object frame: " + error);
  }
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(object->bytes.data()),
      object->bytes.size());
  // Same validation a local read performs — a corrupt transfer never
  // reaches the scheduler's store. put() on an existing key is a no-op,
  // which is exactly what makes duplicate publishes (a result re-sent
  // after a reconnect) idempotent.
  const store::Envelope envelope = store::validate_envelope(bytes);
  store_.objects().put(object->key, envelope.kind, bytes);
  obs::counter("net.objects_absorbed").add(1);
}

json::Value AgentServer::execute(const std::string& unit_id,
                                 const json::Value& request) {
  // Warm-scheduler short-circuit: when the store already holds the unit's
  // result, there is nothing for a remote agent to add — this is what
  // keeps resumed / re-run campaigns from re-simulating on cold agents.
  if (const json::Value* key_text = request.find("result_key")) {
    if (const auto key = store::Digest::from_hex(key_text->as_string());
        key && store_.objects().contains(*key)) {
      obs::counter("net.units_cached").add(1);
      json::Value reply = json::Value::object();
      reply.set("status", "ok");
      reply.set("key", key->to_hex());
      return reply;
    }
  }

  obs::counter("net.units_dispatched").add(1);
  const InflightGuard inflight_gauge;

  // Backpressure: a bounded number of units on the fabric at once; the
  // queue-depth histogram records how many execute() calls were stacked
  // up behind the limit (or merely arriving concurrently when unbounded).
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ++waiting_;
    obs::histogram("net.queue_depth").observe(static_cast<double>(waiting_));
    if (config_.max_inflight > 0) {
      inflight_cv_.wait(lock, [&] {
        return stopping_ || inflight_ < config_.max_inflight;
      });
    }
    ++inflight_;
    --waiting_;
  }
  struct SlotRelease {
    AgentServer* server;
    ~SlotRelease() {
      {
        const std::lock_guard<std::mutex> lock(server->mutex_);
        --server->inflight_;
      }
      server->inflight_cv_.notify_one();
    }
  } slot_release{this};

  SessionPtr session = checkout(unit_id);
  leases_.acquire(unit_id, session->token);
  const auto started = Clock::now();
  const std::string request_text = request.dump();

  for (;;) {  // one iteration per dispatch attempt on this session
    std::shared_ptr<Connection> conn;
    std::uint64_t generation = 0;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      conn = session->conn;
      generation = session->generation;
    }

    bool attached =
        conn && conn->send_frame(proc::FrameType::kRequest, request_text);
    auto last_activity = Clock::now();
    std::string detach_reason = "connection closed before dispatch";

    while (attached) {
      proc::ReadResult reply = conn->recv_frame(kServePollMs);
      const auto now = Clock::now();
      switch (reply.status) {
        case proc::ReadStatus::kTimeout:
          if (config_.heartbeat_timeout_ms > 0.0 &&
              ms_between(last_activity, now) > config_.heartbeat_timeout_ms) {
            // Close rather than re-queue: a wedged agent that recovers
            // will reconnect and resume; a dead one lets the lease run
            // out. Either way the unit is not duplicated.
            obs::counter("net.stall_drops").add(1);
            conn->close();
            attached = false;
            detach_reason = "stopped heartbeating";
          } else if (leases_.expired(unit_id)) {
            expire_and_throw(session, unit_id,
                             "lease expired while the connection idled");
          }
          continue;
        case proc::ReadStatus::kEof:
          attached = false;
          detach_reason = "connection closed mid-unit";
          continue;
        case proc::ReadStatus::kCorrupt:
          // The frame's bytes failed their CRC — whatever it was (result?
          // publish?) is lost, so the request/reply state machine cannot
          // continue on this connection. Force a reconnect; the lease
          // keeps the unit owned and the re-dispatch re-runs it warm.
          conn->close();
          attached = false;
          detach_reason = "corrupt frame: " + reply.error;
          continue;
        case proc::ReadStatus::kError:
          obs::counter("net.protocol_errors").add(1);
          conn->close();
          attached = false;
          detach_reason = "protocol error: " + reply.error;
          continue;
        case proc::ReadStatus::kFrame:
          break;
      }
      last_activity = now;
      leases_.renew(unit_id);

      switch (reply.frame.type) {
        case proc::FrameType::kHeartbeat:
          obs::counter("net.heartbeats").add(1);
          continue;
        case proc::FrameType::kFetch:
        case proc::FrameType::kPublish:
          try {
            if (reply.frame.type == proc::FrameType::kFetch) {
              serve_fetch(*conn, session->name, reply.frame.payload);
            } else {
              absorb_publish(session->name, reply.frame.payload);
            }
          } catch (const std::exception& error) {
            // Bad digest / bad envelope with a valid frame CRC: treat it
            // like corruption — drop the connection and re-dispatch —
            // rather than poisoning the store or failing the unit.
            obs::counter("net.protocol_errors").add(1);
            conn->close();
            attached = false;
            detach_reason = error.what();
          }
          continue;
        case proc::FrameType::kResult:
        case proc::FrameType::kFail:
          break;
        default:
          obs::counter("net.protocol_errors").add(1);
          conn->close();
          attached = false;
          detach_reason =
              "unexpected frame type " +
              std::to_string(static_cast<int>(reply.frame.type));
          continue;
      }

      // kResult / kFail: the unit is decided.
      json::Value payload;
      try {
        payload = json::parse(reply.frame.payload);
      } catch (const std::exception& error) {
        obs::counter("net.protocol_errors").add(1);
        conn->close();
        attached = false;
        detach_reason = std::string("malformed reply: ") + error.what();
        continue;
      }

      const double unit_ms = ms_between(started, now);
      obs::histogram("net.unit_ms").observe(unit_ms);
      obs::histogram("net.agent." + std::to_string(session->id) + ".unit_ms")
          .observe(unit_ms);
      obs::histogram("net.lease_age_ms").observe(leases_.release(unit_id));

      if (reply.frame.type == proc::FrameType::kResult) {
        checkin(session);
        return payload;
      }
      // The agent caught the failure and reported it cleanly: the unit
      // failed but the agent is healthy, so it goes back in the pool.
      obs::counter("net.unit_failures").add(1);
      const json::Value* kind = payload.find("kind");
      const json::Value* message = payload.find("error");
      const std::string what =
          "agent '" + session->name + "' reported for unit '" + unit_id +
          "': " + (message != nullptr ? message->as_string()
                                      : reply.frame.payload);
      const bool transient =
          kind != nullptr && kind->as_string() == "transient";
      checkin(session);
      if (transient) throw TransientError(what);
      throw PermanentError(what);
    }

    // The connection is gone but the lease still owns the unit: wait for
    // the session token to come back on a fresh socket, then re-dispatch.
    if (leases_.attempts(unit_id) >= kMaxDispatchAttempts) {
      expire_and_throw(session, unit_id,
                       detach_reason + "; too many dispatch attempts");
    }
    if (!await_reconnect(session, generation, unit_id)) {
      expire_and_throw(session, unit_id,
                       detach_reason + "; session did not reconnect within "
                       "its lease");
    }
    leases_.rebind(unit_id, session->token);
    obs::counter("net.redispatches").add(1);
  }
}

}  // namespace anacin::net

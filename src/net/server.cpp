#include "net/server.hpp"

#include <chrono>
#include <span>
#include <utility>

#include "net/wire.hpp"
#include "obs/obs.hpp"
#include "store/codec.hpp"
#include "support/error.hpp"

namespace anacin::net {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Poll granularity of the per-unit serve loop: short enough that stall
/// detection and shutdown stay responsive, long enough to stay off the
/// scheduler's profile.
constexpr int kServePollMs = 100;

struct InflightGuard {
  InflightGuard() { obs::gauge("net.units_inflight").add(1.0); }
  ~InflightGuard() { obs::gauge("net.units_inflight").add(-1.0); }
};

}  // namespace

AgentServer::AgentServer(AgentServerConfig config, store::ArtifactStore& store)
    : config_(std::move(config)),
      store_(store),
      listener_(config_.bind_host, config_.port) {
  acceptor_ = std::thread([this] { accept_loop(); });
}

AgentServer::~AgentServer() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();
  // Closing each connection is the fleet-wide shutdown signal: agents see
  // a clean EOF and exit 0, so no remote process outlives the campaign.
  std::deque<std::unique_ptr<Agent>> idle;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    idle.swap(idle_);
    connected_ -= idle.size();
  }
  for (auto& agent : idle) agent->conn->close();
  idle_cv_.notify_all();
}

std::uint16_t AgentServer::port() const { return listener_.port(); }

std::size_t AgentServer::agent_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return connected_;
}

bool AgentServer::wait_for_agents(std::size_t count, int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto ready = [&] { return connected_ >= count; };
  if (timeout_ms < 0) {
    idle_cv_.wait(lock, ready);
    return true;
  }
  return idle_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           ready);
}

void AgentServer::accept_loop() {
  while (true) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    auto conn = listener_.accept(kServePollMs);
    if (!conn) continue;
    // Registration is synchronous and cheap, so the accept thread handles
    // it inline: one kHello in, one kHelloOk out.
    const proc::ReadResult hello = conn->recv_frame(5'000);
    if (!hello || hello.frame.type != proc::FrameType::kHello) continue;
    auto agent = std::make_unique<Agent>();
    agent->conn = std::move(conn);
    try {
      const json::Value doc = json::parse(hello.frame.payload);
      if (const json::Value* name = doc.find("name")) {
        agent->name = name->as_string();
      }
    } catch (const std::exception&) {
      continue;  // malformed registration: drop silently
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      agent->id = next_agent_id_++;
      if (agent->name.empty()) {
        agent->name = "agent-" + std::to_string(agent->id);
      }
    }
    json::Value welcome = json::Value::object();
    welcome.set("id", static_cast<double>(agent->id));
    if (!agent->conn->send_frame(proc::FrameType::kHelloOk, welcome.dump())) {
      continue;
    }
    obs::counter("net.agents_connected").add(1);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++connected_;
      idle_.push_back(std::move(agent));
    }
    idle_cv_.notify_all();
  }
}

std::unique_ptr<AgentServer::Agent> AgentServer::checkout(
    const std::string& unit_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const bool got = idle_cv_.wait_for(
      lock,
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double, std::milli>(
              config_.checkout_timeout_ms)),
      [&] { return !idle_.empty() || stopping_; });
  if (!got || stopping_ || idle_.empty()) {
    const std::size_t connected = connected_;
    lock.unlock();
    // Transient on purpose: the supervisor's retries each wait the full
    // checkout budget again, giving a drained fleet time to refill.
    UnitTriage triage;
    triage.disposition = "crash";
    throw WorkerCrashError("no agent available for unit '" + unit_id +
                               "' within " +
                               std::to_string(config_.checkout_timeout_ms) +
                               " ms (connected agents: " +
                               std::to_string(connected) + ")",
                           std::move(triage));
  }
  auto agent = std::move(idle_.front());
  idle_.pop_front();
  return agent;
}

void AgentServer::checkin(std::unique_ptr<Agent> agent) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!stopping_) {
      idle_.push_back(std::move(agent));
      idle_cv_.notify_all();
      return;
    }
    --connected_;
  }
  agent->conn->close();
}

void AgentServer::drop_and_throw(std::unique_ptr<Agent> agent,
                                 const std::string& unit_id,
                                 const std::string& reason) {
  agent->conn->close();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    --connected_;
  }
  obs::counter("net.agent_disconnects").add(1);
  UnitTriage triage;
  triage.disposition = "crash";
  throw WorkerCrashError("agent '" + agent->name + "' executing unit '" +
                             unit_id + "': " + reason +
                             "; the unit will be re-queued",
                         std::move(triage));
}

void AgentServer::serve_fetch(Agent& agent, const std::string& payload) {
  const auto key = store::Digest::from_hex(payload);
  if (!key) {
    throw PermanentError("agent '" + agent.name +
                         "' fetched a malformed digest");
  }
  const store::ObjectBytes bytes = store_.objects().get(*key);
  if (!bytes) {
    agent.conn->send_frame(proc::FrameType::kMissing, payload);
    return;
  }
  agent.conn->send_frame(proc::FrameType::kObject,
                         encode_object_payload(*key, *bytes));
  obs::counter("net.objects_shipped").add(1);
}

void AgentServer::absorb_publish(Agent& agent, const std::string& payload) {
  std::string error;
  const auto object = decode_object_payload(payload, &error);
  if (!object) {
    throw PermanentError("agent '" + agent.name + "' published a bad " +
                         "object frame: " + error);
  }
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(object->bytes.data()),
      object->bytes.size());
  // Same validation a local read performs — a corrupt transfer never
  // reaches the scheduler's store.
  const store::Envelope envelope = store::validate_envelope(bytes);
  store_.objects().put(object->key, envelope.kind, bytes);
  obs::counter("net.objects_absorbed").add(1);
}

json::Value AgentServer::execute(const std::string& unit_id,
                                 const json::Value& request) {
  // Warm-scheduler short-circuit: when the store already holds the unit's
  // result, there is nothing for a remote agent to add — this is what
  // keeps resumed / re-run campaigns from re-simulating on cold agents.
  if (const json::Value* key_text = request.find("result_key")) {
    if (const auto key = store::Digest::from_hex(key_text->as_string());
        key && store_.objects().contains(*key)) {
      obs::counter("net.units_cached").add(1);
      json::Value reply = json::Value::object();
      reply.set("status", "ok");
      reply.set("key", key->to_hex());
      return reply;
    }
  }

  obs::counter("net.units_dispatched").add(1);
  const InflightGuard inflight;
  auto agent = checkout(unit_id);
  const auto started = Clock::now();
  if (!agent->conn->send_frame(proc::FrameType::kRequest, request.dump())) {
    drop_and_throw(std::move(agent), unit_id,
                   "connection closed before dispatch");
  }

  auto last_activity = Clock::now();
  while (true) {
    proc::ReadResult reply = agent->conn->recv_frame(kServePollMs);
    const auto now = Clock::now();
    switch (reply.status) {
      case proc::ReadStatus::kTimeout:
        if (config_.heartbeat_timeout_ms > 0.0 &&
            ms_between(last_activity, now) > config_.heartbeat_timeout_ms) {
          obs::counter("net.stall_drops").add(1);
          drop_and_throw(
              std::move(agent), unit_id,
              "stopped heartbeating (" +
                  std::to_string(ms_between(last_activity, now)) +
                  " ms since the last frame, timeout " +
                  std::to_string(config_.heartbeat_timeout_ms) + " ms)");
        }
        continue;
      case proc::ReadStatus::kEof:
        drop_and_throw(std::move(agent), unit_id,
                       "connection closed mid-unit");
      case proc::ReadStatus::kError:
        obs::counter("net.protocol_errors").add(1);
        drop_and_throw(std::move(agent), unit_id,
                       "protocol error: " + reply.error);
      case proc::ReadStatus::kFrame:
        break;
    }
    last_activity = now;

    switch (reply.frame.type) {
      case proc::FrameType::kHeartbeat:
        obs::counter("net.heartbeats").add(1);
        continue;
      case proc::FrameType::kFetch:
        serve_fetch(*agent, reply.frame.payload);
        continue;
      case proc::FrameType::kPublish:
        try {
          absorb_publish(*agent, reply.frame.payload);
        } catch (const std::exception& error) {
          drop_and_throw(std::move(agent), unit_id, error.what());
        }
        continue;
      case proc::FrameType::kResult:
      case proc::FrameType::kFail:
        break;
      default:
        drop_and_throw(std::move(agent), unit_id,
                       "unexpected frame type " +
                           std::to_string(
                               static_cast<int>(reply.frame.type)));
    }

    const double unit_ms = ms_between(started, now);
    obs::histogram("net.unit_ms").observe(unit_ms);
    obs::histogram("net.agent." + std::to_string(agent->id) + ".unit_ms")
        .observe(unit_ms);

    json::Value payload;
    try {
      payload = json::parse(reply.frame.payload);
    } catch (const std::exception& error) {
      drop_and_throw(std::move(agent), unit_id,
                     std::string("malformed reply: ") + error.what());
    }
    if (reply.frame.type == proc::FrameType::kResult) {
      checkin(std::move(agent));
      return payload;
    }
    // The agent caught the failure and reported it cleanly: the unit
    // failed but the agent is healthy, so it goes back in the pool.
    obs::counter("net.unit_failures").add(1);
    const json::Value* kind = payload.find("kind");
    const json::Value* message = payload.find("error");
    const std::string what =
        "agent '" + agent->name + "' reported for unit '" + unit_id +
        "': " + (message != nullptr ? message->as_string()
                                    : reply.frame.payload);
    const bool transient =
        kind != nullptr && kind->as_string() == "transient";
    checkin(std::move(agent));
    if (transient) throw TransientError(what);
    throw PermanentError(what);
  }
}

}  // namespace anacin::net

#include "net/wire.hpp"

namespace anacin::net {

namespace {
constexpr std::size_t kHexChars = 32;  // 128-bit digest
}

std::string encode_object_payload(const store::Digest& key,
                                  std::span<const std::uint8_t> bytes) {
  std::string payload = key.to_hex();
  payload.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return payload;
}

std::optional<ObjectPayload> decode_object_payload(std::string_view payload,
                                                   std::string* error) {
  if (payload.size() < kHexChars) {
    if (error != nullptr) {
      *error = "object payload too short for a digest (" +
               std::to_string(payload.size()) + " bytes)";
    }
    return std::nullopt;
  }
  const auto key = store::Digest::from_hex(
      std::string(payload.substr(0, kHexChars)));
  if (!key) {
    if (error != nullptr) {
      *error = "object payload carries a malformed digest";
    }
    return std::nullopt;
  }
  return ObjectPayload{*key, payload.substr(kHexChars)};
}

json::Value make_hello(const std::string& name, std::uint16_t proto,
                       const std::string& token) {
  json::Value hello = json::Value::object();
  hello.set("name", name);
  hello.set("proto", static_cast<double>(proto));
  if (!token.empty()) hello.set("token", token);
  return hello;
}

}  // namespace anacin::net

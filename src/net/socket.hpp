#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "proc/protocol.hpp"

namespace anacin::net {

/// One bidirectional stream speaking the unified frame codec of
/// proc/protocol.hpp. Two implementations exist: TcpConnection is the
/// real POSIX socket, and chaos.hpp's FaultyConnection wraps another
/// Connection to inject seeded frame-level faults — the scheduler and
/// agent code paths are written against this interface so chaos composes
/// transparently.
///
/// Writes are serialized by the implementation (whole frames, never
/// bytes) so a unit's heartbeat thread can interleave with result frames.
/// Reads are single-consumer by construction: exactly one thread drives
/// recv_frame() on a connection at a time (the agent's serve loop, or the
/// scheduler thread that owns the agent for the current unit).
class Connection {
 public:
  virtual ~Connection() = default;

  virtual bool valid() const = 0;

  /// Close the stream. The peer's next recv_frame sees a clean kEof; a
  /// peer mid-write sees EPIPE (SIGPIPE is ignored process-wide). Safe to
  /// call concurrently with a blocked recv_frame on another thread.
  virtual void close() = 0;

  /// Write one frame at the connection's protocol version. Returns false
  /// when the peer is gone.
  virtual bool send_frame(proc::FrameType type, std::string_view payload) = 0;

  /// Write pre-encoded frame bytes verbatim (already framed at the
  /// connection's version). The chaos layer uses this to put deliberately
  /// corrupted — but stream-aligned — bytes on the wire.
  virtual bool send_raw(std::string_view bytes) = 0;

  /// Read one frame; `timeout_ms` < 0 blocks until the peer writes or
  /// hangs up.
  virtual proc::ReadResult recv_frame(int timeout_ms = -1) = 0;

  /// Frame protocol version in force (proc::kProtocolV1 until the
  /// kHello/kHelloOk handshake upgrades it; see docs/DISTRIBUTED.md).
  virtual std::uint16_t version() const = 0;
  virtual void set_version(std::uint16_t version) = 0;
};

/// The real thing: one connected TCP stream. Frame traffic is counted
/// into the net.* metrics (frames/bytes, each direction). New connections
/// start at kProtocolV1 — the framing every peer version can read — and
/// are upgraded to the negotiated version after kHello/kHelloOk.
class TcpConnection : public Connection {
 public:
  /// Adopt an already-connected socket (the listener's accept path).
  explicit TcpConnection(int fd);
  ~TcpConnection() override;

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Connect to host:port, failing after `timeout_ms`. Throws IoError on
  /// resolution/connection failure. Enables TCP_NODELAY — frames are
  /// small and latency-bound, so Nagle only hurts.
  static std::unique_ptr<TcpConnection> connect(const std::string& host,
                                                std::uint16_t port,
                                                int timeout_ms);

  bool valid() const override { return fd_ >= 0; }
  int fd() const { return fd_; }

  void close() override;
  bool send_frame(proc::FrameType type, std::string_view payload) override;
  bool send_raw(std::string_view bytes) override;
  proc::ReadResult recv_frame(int timeout_ms = -1) override;

  std::uint16_t version() const override { return version_; }
  void set_version(std::uint16_t version) override { version_ = version; }

  /// The mutex send_frame serializes on — exposed for tests that need to
  /// interleave raw writes with framed ones.
  std::mutex& write_mutex() { return write_mutex_; }

 private:
  // Atomic because close() is documented safe against a concurrent
  // blocked recv_frame on another thread (the session-resume splice and
  // the server destructor both close from outside the reader).
  std::atomic<int> fd_{-1};
  std::uint16_t version_ = proc::kProtocolV1;
  std::mutex write_mutex_;
};

/// A listening TCP socket. Binding port 0 picks an ephemeral port; port()
/// reports the bound one (tests and --port-file run entirely on ephemeral
/// ports so parallel CI jobs never collide).
class TcpListener {
 public:
  /// Bind and listen on host:port; throws IoError on failure.
  TcpListener(const std::string& host, std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Accept one connection, waiting at most `timeout_ms` (< 0 blocks).
  /// Returns nullptr on timeout or when the listener was closed.
  /// Interrupted syscalls (EINTR) are retried against the same deadline,
  /// so a signal delivered mid-accept never masquerades as a timeout.
  std::unique_ptr<TcpConnection> accept(int timeout_ms);

  /// Stop accepting; a blocked accept() returns nullptr.
  void close();

 private:
  // Atomic: close() races with the accept thread's poll by design (the
  // scheduler destructor invalidates the fd while accept_loop is waiting
  // out its poll timeout).
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

}  // namespace anacin::net

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "proc/protocol.hpp"

namespace anacin::net {

/// One connected TCP stream speaking the unified frame codec of
/// proc/protocol.hpp — the same length-prefixed frames the worker pipes
/// carry, so pipes and sockets share one wire format. Frame traffic is
/// counted into the net.* metrics (frames/bytes, each direction).
///
/// Writes are serialized by an internal mutex so a unit's heartbeat thread
/// (proc::Heartbeater over write_mutex()) can interleave whole frames with
/// result frames, never bytes. Reads are single-consumer by construction:
/// exactly one thread drives recv_frame() on a connection at a time (the
/// agent's serve loop, or the scheduler thread that owns the agent for the
/// current unit).
class TcpConnection {
 public:
  /// Adopt an already-connected socket (the listener's accept path).
  explicit TcpConnection(int fd);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Connect to host:port, failing after `timeout_ms`. Throws IoError on
  /// resolution/connection failure. Enables TCP_NODELAY — frames are
  /// small and latency-bound, so Nagle only hurts.
  static std::unique_ptr<TcpConnection> connect(const std::string& host,
                                                std::uint16_t port,
                                                int timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Close the stream. The peer's next recv_frame sees a clean kEof; a
  /// peer mid-write sees EPIPE (SIGPIPE is ignored process-wide). Safe to
  /// call concurrently with a blocked recv_frame on another thread — the
  /// socket is shutdown() first so the reader wakes with EOF.
  void close();

  /// Write one frame under the write mutex. Returns false when the peer
  /// is gone.
  bool send_frame(proc::FrameType type, std::string_view payload);

  /// Read one frame; `timeout_ms` < 0 blocks until the peer writes or
  /// hangs up.
  proc::ReadResult recv_frame(int timeout_ms = -1);

  /// The mutex send_frame serializes on — shared with proc::Heartbeater so
  /// heartbeat frames and result frames never tear each other.
  std::mutex& write_mutex() { return write_mutex_; }

 private:
  int fd_ = -1;
  std::mutex write_mutex_;
};

/// A listening TCP socket. Binding port 0 picks an ephemeral port; port()
/// reports the bound one (tests and --port-file run entirely on ephemeral
/// ports so parallel CI jobs never collide).
class TcpListener {
 public:
  /// Bind and listen on host:port; throws IoError on failure.
  TcpListener(const std::string& host, std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Accept one connection, waiting at most `timeout_ms` (< 0 blocks).
  /// Returns nullptr on timeout or when the listener was closed.
  std::unique_ptr<TcpConnection> accept(int timeout_ms);

  /// Stop accepting; a blocked accept() returns nullptr.
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace anacin::net

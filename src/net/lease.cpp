#include "net/lease.hpp"

#include "support/error.hpp"

namespace anacin::net {

LeaseTable::LeaseTable(double lease_ms) : lease_ms_(lease_ms) {}

LeaseTable::Clock::duration LeaseTable::window() const {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(lease_ms_));
}

void LeaseTable::acquire(const std::string& unit_id,
                         const std::string& token) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = leases_[unit_id];
  entry.owner = token;
  entry.acquired = Clock::now();
  entry.deadline = entry.acquired + window();
  entry.attempts = 1;
}

void LeaseTable::renew(const std::string& unit_id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto found = leases_.find(unit_id);
  if (found == leases_.end()) return;
  found->second.deadline = Clock::now() + window();
}

void LeaseTable::rebind(const std::string& unit_id, const std::string& token) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto found = leases_.find(unit_id);
  if (found == leases_.end()) return;
  found->second.owner = token;
  found->second.deadline = Clock::now() + window();
  ++found->second.attempts;
}

bool LeaseTable::expired(const std::string& unit_id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto found = leases_.find(unit_id);
  if (found == leases_.end()) return true;
  return Clock::now() >= found->second.deadline;
}

LeaseTable::Clock::time_point LeaseTable::deadline(
    const std::string& unit_id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto found = leases_.find(unit_id);
  ANACIN_CHECK(found != leases_.end(), "no lease for unit '" + unit_id + "'");
  return found->second.deadline;
}

int LeaseTable::attempts(const std::string& unit_id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto found = leases_.find(unit_id);
  return found == leases_.end() ? 0 : found->second.attempts;
}

double LeaseTable::release(const std::string& unit_id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto found = leases_.find(unit_id);
  if (found == leases_.end()) return 0.0;
  const double age_ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - found->second.acquired)
                            .count();
  leases_.erase(found);
  return age_ms;
}

std::size_t LeaseTable::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return leases_.size();
}

}  // namespace anacin::net

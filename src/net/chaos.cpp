#include "net/chaos.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <thread>

#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/string_util.hpp"

namespace anacin::net {

namespace {

using Clock = std::chrono::steady_clock;

double parse_probability(const std::string& key, const std::string& text) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    throw ConfigError("chaos spec: '" + key + "' needs a number, got '" +
                      text + "'");
  }
  if (used != text.size() || value < 0.0 || value > 1.0) {
    throw ConfigError("chaos spec: '" + key + "' must be in [0,1], got '" +
                      text + "'");
  }
  return value;
}

double parse_millis(const std::string& key, const std::string& text) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    throw ConfigError("chaos spec: '" + key + "' needs a number, got '" +
                      text + "'");
  }
  if (used != text.size() || value < 0.0) {
    throw ConfigError("chaos spec: '" + key + "' must be >= 0, got '" + text +
                      "'");
  }
  return value;
}

/// Process-wide connection serial: the per-connection fault stream is
/// derived from (seed, serial), so two agents chaos-wrapped with the same
/// seed inside one process still fault independently.
std::uint64_t next_connection_serial() {
  static std::atomic<std::uint64_t> serial{0};
  return serial.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

ChaosConfig ChaosConfig::parse(const std::string& spec) {
  ChaosConfig config;
  for (const std::string& field : split(spec, ',')) {
    const std::string trimmed(trim(field));
    if (trimmed.empty()) continue;
    const std::size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("chaos spec: expected key=value, got '" + trimmed +
                        "'");
    }
    const std::string key(trim(trimmed.substr(0, eq)));
    const std::string value(trim(trimmed.substr(eq + 1)));
    if (key == "seed") {
      try {
        config.seed = std::stoull(value);
      } catch (const std::exception&) {
        throw ConfigError("chaos spec: 'seed' needs an integer, got '" +
                          value + "'");
      }
    } else if (key == "drop") {
      config.drop = parse_probability(key, value);
    } else if (key == "corrupt") {
      config.corrupt = parse_probability(key, value);
    } else if (key == "reorder") {
      config.reorder = parse_probability(key, value);
    } else if (key == "reset") {
      config.reset = parse_probability(key, value);
    } else if (key == "delay") {
      config.delay = parse_probability(key, value);
    } else if (key == "delay_ms") {
      config.delay_ms = parse_millis(key, value);
    } else if (key == "partition") {
      config.partition = parse_probability(key, value);
    } else if (key == "partition_ms") {
      config.partition_ms = parse_millis(key, value);
    } else {
      throw ConfigError("chaos spec: unknown key '" + key + "'");
    }
  }
  return config;
}

std::optional<ChaosConfig> ChaosConfig::from_env() {
  const char* spec = std::getenv("ANACIN_NET_CHAOS");
  if (spec == nullptr || *spec == '\0') return std::nullopt;
  return parse(spec);
}

std::string ChaosConfig::summary() const {
  std::ostringstream os;
  os << "chaos seed=" << seed;
  if (drop > 0) os << " drop=" << drop;
  if (corrupt > 0) os << " corrupt=" << corrupt;
  if (reorder > 0) os << " reorder=" << reorder;
  if (reset > 0) os << " reset=" << reset;
  if (delay > 0) os << " delay=" << delay << " delay_ms=" << delay_ms;
  if (partition > 0) {
    os << " partition=" << partition << " partition_ms=" << partition_ms;
  }
  return os.str();
}

struct FaultyConnection::Impl {
  ChaosConfig config;
  Rng rng;
  std::mutex mutex;               // guards rng, held, partition_until
  std::vector<char> held;         // reorder buffer (at most one frame)
  Clock::time_point partition_until{};

  explicit Impl(const ChaosConfig& cfg)
      : config(cfg),
        rng(hash_combine(mix64(cfg.seed), next_connection_serial())) {}

  /// Send the held (reordered) frame, if any. Caller holds `mutex`.
  void flush_held(Connection& inner) {
    if (held.empty()) return;
    std::vector<char> frame;
    frame.swap(held);
    inner.send_raw({frame.data(), frame.size()});
  }
};

FaultyConnection::FaultyConnection(std::unique_ptr<Connection> inner,
                                   const ChaosConfig& config)
    : inner_(std::move(inner)), impl_(std::make_unique<Impl>(config)) {}

FaultyConnection::~FaultyConnection() { close(); }

bool FaultyConnection::valid() const { return inner_->valid(); }

void FaultyConnection::close() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->flush_held(*inner_);
  }
  inner_->close();
}

bool FaultyConnection::send_frame(proc::FrameType type,
                                  std::string_view payload) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const ChaosConfig& cfg = impl_->config;
  Rng& rng = impl_->rng;

  if (!inner_->valid()) return false;

  // Connection reset: the strongest fault — tear the transport down so
  // the sender sees a failed write and the peer sees EOF.
  if (rng.bernoulli(cfg.reset)) {
    obs::counter("net.chaos_resets").add(1);
    impl_->held.clear();  // the reset also eats any held frame
    inner_->close();
    return false;
  }

  // One-way partition: frames in this direction vanish for a window, but
  // the send reports success — exactly how a blackholing middlebox looks.
  const auto now = Clock::now();
  if (now < impl_->partition_until) return true;
  if (rng.bernoulli(cfg.partition)) {
    obs::counter("net.chaos_partitions").add(1);
    impl_->partition_until =
        now + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::milli>(cfg.partition_ms));
    return true;
  }

  if (rng.bernoulli(cfg.drop)) {
    obs::counter("net.chaos_dropped").add(1);
    return true;  // silently gone; liveness machinery must notice
  }

  if (rng.bernoulli(cfg.delay)) {
    obs::counter("net.chaos_delayed").add(1);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        rng.uniform(0.0, cfg.delay_ms)));
  }

  // From here the frame will reach the wire, possibly damaged or swapped
  // with its successor. Encode once at the connection's version so the
  // corruption happens AFTER the CRC32C trailer is computed — that is the
  // whole point: the receiver's CRC check must fail.
  std::vector<char> frame =
      proc::encode_frame(type, payload, inner_->version());
  if (frame.empty()) return false;  // oversized payload

  if (rng.bernoulli(cfg.corrupt) && frame.size() > 5) {
    // Flip one byte past the header: never the length field (the stream
    // must stay frame-aligned) and never the type byte (an unknown type
    // is a *protocol* error, not a *corrupt* frame). Payload and trailer
    // bytes are both fair game — either way the CRC check fails.
    const auto offset = static_cast<std::size_t>(
        rng.uniform_int(5, static_cast<std::int64_t>(frame.size()) - 1));
    frame[offset] = static_cast<char>(frame[offset] ^ 0xff);
    obs::counter("net.chaos_corrupted").add(1);
  }

  if (impl_->held.empty() && rng.bernoulli(cfg.reorder)) {
    // Hold this frame; it goes out after the next send (or is flushed by
    // the next recv/close so a request/response peer cannot deadlock).
    obs::counter("net.chaos_reordered").add(1);
    impl_->held = std::move(frame);
    return true;
  }

  const bool sent = inner_->send_raw({frame.data(), frame.size()});
  impl_->flush_held(*inner_);
  return sent;
}

bool FaultyConnection::send_raw(std::string_view bytes) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const bool sent = inner_->send_raw(bytes);
  impl_->flush_held(*inner_);
  return sent;
}

proc::ReadResult FaultyConnection::recv_frame(int timeout_ms) {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->flush_held(*inner_);
  }
  return inner_->recv_frame(timeout_ms);
}

std::uint16_t FaultyConnection::version() const { return inner_->version(); }

void FaultyConnection::set_version(std::uint16_t version) {
  inner_->set_version(version);
}

std::unique_ptr<Connection> maybe_wrap_chaos(std::unique_ptr<Connection> conn,
                                             const ChaosConfig& config) {
  if (!config.enabled()) return conn;
  return std::make_unique<FaultyConnection>(std::move(conn), config);
}

}  // namespace anacin::net

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/socket.hpp"

namespace anacin::net {

/// Deterministic network fault injection for the scheduler/agent fabric.
/// Every knob is a per-frame probability drawn from a seeded stream, so a
/// chaos campaign replays bit-for-bit: same seed, same connection order,
/// same faults. Faults are injected at the frame boundary on the *send*
/// path (the receive path only ever observes their effects), which keeps
/// the TCP stream byte-aligned — a corrupted frame still parses as a
/// frame, it just fails its CRC32C check.
///
/// The config travels two ways: `--net-chaos-*` CLI flags on `anacin
/// serve` / `anacin agent`, and the `ANACIN_NET_CHAOS` environment spec
/// ("seed=7,drop=0.05,corrupt=0.02,reorder=0.1,reset=0.01,delay=0.2,
/// delay_ms=15,partition=0.005,partition_ms=250"), which lets the fleet
/// scripts chaos-wrap a process without touching its command line. CLI
/// flags override the environment field-by-field.
struct ChaosConfig {
  /// Base seed of the fault stream. Each connection derives its own
  /// stream from (seed, connection serial) so concurrent connections
  /// fault independently but reproducibly.
  std::uint64_t seed = 0;
  /// Probability a sent frame is silently dropped (send pretends
  /// success; the peer's heartbeat/lease machinery must recover).
  double drop = 0.0;
  /// Probability a sent frame has one payload byte flipped *after* the
  /// CRC32C trailer is computed, so the receiver sees kCorrupt.
  double corrupt = 0.0;
  /// Probability a sent frame is held back and sent after the next one
  /// (reorder window of 1 — bounded so causality violations stay local).
  double reorder = 0.0;
  /// Probability a send tears the connection down instead (the peer sees
  /// EOF mid-conversation, as if the process died or the NIC reset).
  double reset = 0.0;
  /// Probability a sent frame is delayed by a uniform sleep in
  /// [0, delay_ms].
  double delay = 0.0;
  double delay_ms = 20.0;
  /// Probability a send opens a one-way partition: this direction
  /// blackholes every frame for partition_ms while the peer's frames
  /// still arrive.
  double partition = 0.0;
  double partition_ms = 200.0;

  /// True when any fault has non-zero probability. A parsed-but-inert
  /// config (all zeros) wraps to a pass-through FaultyConnection, which
  /// the transparency fuzz test exploits.
  bool enabled() const {
    return drop > 0 || corrupt > 0 || reorder > 0 || reset > 0 || delay > 0 ||
           partition > 0;
  }

  /// Parse a "key=value,key=value" spec. Unknown keys and malformed
  /// values throw ConfigError — a typo'd chaos spec silently running a
  /// *clean* campaign would invalidate the experiment.
  static ChaosConfig parse(const std::string& spec);

  /// Config from ANACIN_NET_CHAOS, or nullopt when the variable is unset
  /// or empty.
  static std::optional<ChaosConfig> from_env();

  /// One-line human summary for startup logs ("chaos seed=7 drop=0.05
  /// corrupt=0.02"), listing only the active knobs.
  std::string summary() const;
};

/// A Connection decorator that applies a ChaosConfig to the send path.
/// The wrapped connection does the real I/O; this layer decides, per
/// frame, whether the bytes go out clean, corrupted, late, out of order,
/// or not at all. recv_frame passes through untouched (apart from
/// flushing a held reordered frame first, so a request/response peer
/// can't deadlock behind the reorder buffer).
///
/// Determinism contract: the fault sequence is a pure function of
/// (config.seed, connection serial, frame index on this connection).
class FaultyConnection : public Connection {
 public:
  /// Wrap `inner`, deriving this connection's fault stream from the
  /// config seed and a process-wide connection serial.
  FaultyConnection(std::unique_ptr<Connection> inner, const ChaosConfig& config);
  ~FaultyConnection() override;

  bool valid() const override;
  void close() override;
  bool send_frame(proc::FrameType type, std::string_view payload) override;
  bool send_raw(std::string_view bytes) override;
  proc::ReadResult recv_frame(int timeout_ms = -1) override;
  std::uint16_t version() const override;
  void set_version(std::uint16_t version) override;

  /// The wrapped connection (tests reach through to the TcpConnection).
  Connection& inner() { return *inner_; }

 private:
  struct Impl;
  std::unique_ptr<Connection> inner_;
  std::unique_ptr<Impl> impl_;
};

/// Wrap `conn` in a FaultyConnection when `config` has any fault enabled;
/// otherwise return it unchanged (zero overhead on the clean path).
std::unique_ptr<Connection> maybe_wrap_chaos(std::unique_ptr<Connection> conn,
                                             const ChaosConfig& config);

}  // namespace anacin::net

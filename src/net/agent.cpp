#include "net/agent.hpp"

#include <unistd.h>

#include <cstdio>
#include <span>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/obs.hpp"
#include "proc/protocol.hpp"
#include "proc/worker_main.hpp"
#include "store/codec.hpp"
#include "support/error.hpp"
#include "support/failure_injector.hpp"

namespace anacin::net {

namespace {

std::string default_agent_name() {
  char hostname[256] = "agent";
  ::gethostname(hostname, sizeof(hostname) - 1);
  return std::string(hostname) + ":" + std::to_string(::getpid());
}

/// Pull one missing input object from the scheduler into the local store.
/// The per-unit exchange is strictly request/reply, so the next non-
/// heartbeat frame after kFetch is the scheduler's kObject or kMissing.
void fetch_object(TcpConnection& conn, store::ObjectStore& objects,
                  const store::Digest& key) {
  if (!conn.send_frame(proc::FrameType::kFetch, key.to_hex())) {
    throw TransientError("agent: scheduler hung up during fetch of " +
                         key.to_hex());
  }
  const proc::ReadResult reply = conn.recv_frame();
  if (!reply) {
    throw TransientError("agent: scheduler hung up before answering fetch of " +
                         key.to_hex());
  }
  if (reply.frame.type == proc::FrameType::kMissing) {
    // The scheduler dispatched a unit whose inputs it cannot serve — a
    // scheduler-side bug, so don't retry.
    throw PermanentError("agent: scheduler has no object " + key.to_hex() +
                         " (pair units are dispatched only after their "
                         "runs complete)");
  }
  if (reply.frame.type != proc::FrameType::kObject) {
    throw PermanentError("agent: unexpected frame type " +
                         std::to_string(static_cast<int>(reply.frame.type)) +
                         " in reply to fetch");
  }
  std::string error;
  const auto object = decode_object_payload(reply.frame.payload, &error);
  if (!object) throw PermanentError("agent: bad object frame: " + error);
  if (!(object->key == key)) {
    throw PermanentError("agent: fetched " + key.to_hex() +
                         " but the scheduler sent " + object->key.to_hex());
  }
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(object->bytes.data()),
      object->bytes.size());
  // Full envelope validation before the store accepts the bytes: a
  // corrupted transfer is rejected here, never written.
  const store::Envelope envelope = store::validate_envelope(bytes);
  objects.put(key, envelope.kind, bytes);
  obs::counter("net.objects_fetched").add(1);
}

/// Ship the unit's result object back to the scheduler. The scheduler
/// put()s it before it reads our kResult, which is what preserves the
/// UnitExecutor contract (artifact present before execute() returns).
void publish_object(TcpConnection& conn, store::ObjectStore& objects,
                    const store::Digest& key) {
  const store::ObjectBytes bytes = objects.get(key);
  if (!bytes) {
    throw PermanentError("agent: executed a unit but its result object " +
                         key.to_hex() + " is not in the local store");
  }
  const std::string payload = encode_object_payload(key, *bytes);
  if (!conn.send_frame(proc::FrameType::kPublish, payload)) {
    throw TransientError("agent: scheduler hung up during publish of " +
                         key.to_hex());
  }
  obs::counter("net.objects_published").add(1);
}

}  // namespace

int run_agent(store::ArtifactStore& store, const AgentConfig& config) {
  const auto injector = support::FailureInjector::from_env();
  std::unique_ptr<TcpConnection> conn;
  try {
    conn = TcpConnection::connect(config.host, config.port,
                                  config.connect_timeout_ms);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "agent: %s\n", error.what());
    return 1;
  }

  const std::string name =
      config.name.empty() ? default_agent_name() : config.name;
  if (!conn->send_frame(proc::FrameType::kHello, make_hello(name).dump())) {
    std::fprintf(stderr, "agent: scheduler hung up during registration\n");
    return 1;
  }
  const proc::ReadResult welcome = conn->recv_frame(config.connect_timeout_ms);
  if (!welcome || welcome.frame.type != proc::FrameType::kHelloOk) {
    std::fprintf(stderr, "agent: registration not acknowledged\n");
    return 1;
  }

  std::uint64_t units_served = 0;
  while (true) {
    const proc::ReadResult incoming = conn->recv_frame();
    if (incoming.status == proc::ReadStatus::kEof) {
      return 0;  // scheduler closed the stream: campaign over, clean exit
    }
    if (incoming.status != proc::ReadStatus::kFrame) {
      std::fprintf(stderr, "agent: protocol error: %s\n",
                   incoming.error.c_str());
      return 1;
    }
    if (incoming.frame.type != proc::FrameType::kRequest) {
      std::fprintf(stderr, "agent: unexpected frame type %d\n",
                   static_cast<int>(incoming.frame.type));
      return 1;
    }

    std::string unit = "?";
    try {
      const json::Value request = json::parse(incoming.frame.payload);
      unit = request.at("unit").as_string();
      const proc::Heartbeater heartbeater(
          conn->fd(), config.heartbeat_interval_ms, conn->write_mutex());
      for (const store::Digest& input : proc::unit_input_keys(request)) {
        if (!store.objects().contains(input)) {
          fetch_object(*conn, store.objects(), input);
        }
      }
      // Injected crashes/hangs fire in whichever process executes the
      // unit — here, in distributed mode (the scheduler sees the dropped
      // connection as a WorkerCrashError and re-queues).
      injector.apply_execution_hooks(unit);
      const json::Value reply = proc::execute_unit(store, request);
      const auto result_key =
          store::Digest::from_hex(reply.at("key").as_string());
      ANACIN_CHECK(result_key.has_value(), "execute_unit returned a bad key");
      publish_object(*conn, store.objects(), *result_key);
      if (!conn->send_frame(proc::FrameType::kResult, reply.dump())) {
        return 1;  // scheduler gone mid-reply
      }
    } catch (const std::exception& error) {
      json::Value payload = json::Value::object();
      payload.set("kind", dynamic_cast<const TransientError*>(&error) !=
                                  nullptr
                              ? "transient"
                              : "permanent");
      payload.set("error", error.what());
      if (!conn->send_frame(proc::FrameType::kFail, payload.dump())) {
        return 1;
      }
    }
    if (config.max_units > 0 && ++units_served >= config.max_units) {
      return 0;  // deliberate retirement (tests exercise requeue with this)
    }
  }
}

}  // namespace anacin::net

#include "net/agent.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <span>
#include <thread>

#include "net/wire.hpp"
#include "obs/obs.hpp"
#include "proc/protocol.hpp"
#include "proc/worker_main.hpp"
#include "store/codec.hpp"
#include "support/failure_injector.hpp"
#include "support/rng.hpp"

namespace anacin::net {

namespace {

std::string default_agent_name() {
  char hostname[256] = "agent";
  ::gethostname(hostname, sizeof(hostname) - 1);
  return std::string(hostname) + ":" + std::to_string(::getpid());
}

/// Ship the unit's result object back to the scheduler. The scheduler
/// put()s it before it reads our kResult, which is what preserves the
/// UnitExecutor contract (artifact present before execute() returns).
void publish_object(Connection& conn, store::ObjectStore& objects,
                    const store::Digest& key) {
  const store::ObjectBytes bytes = objects.get(key);
  if (!bytes) {
    // The usual cause is a degraded local store (disk fault swallowed by
    // the ArtifactStore's --no-store fallback): the unit's computation
    // succeeded but the artifact never landed. Transient — the scheduler
    // re-queues it onto an agent whose disk still works.
    throw TransientError("agent: executed a unit but its result object " +
                         key.to_hex() +
                         " is not in the local store (disk fault / store "
                         "degraded?)");
  }
  const std::string payload = encode_object_payload(key, *bytes);
  if (!conn.send_frame(proc::FrameType::kPublish, payload)) {
    throw ConnectionLostError("agent: scheduler hung up during publish of " +
                              key.to_hex());
  }
  obs::counter("net.objects_published").add(1);
}

/// What one registration attempt produced.
struct Registration {
  int id = -1;
  std::string token;
  std::uint16_t proto = proc::kProtocolV1;
};

/// One connect + kHello/kHelloOk exchange. Returns nullopt on transport
/// failure (caller backs off and retries); throws ProtocolVersionError
/// when the scheduler refuses our frame protocol (retrying cannot help).
std::optional<Registration> register_with(Connection& conn,
                                          const std::string& name,
                                          const std::string& token,
                                          int timeout_ms) {
  const json::Value hello = make_hello(name, proc::kProtocolVersion, token);
  if (!conn.send_frame(proc::FrameType::kHello, hello.dump())) {
    return std::nullopt;
  }
  const proc::ReadResult welcome = conn.recv_frame(timeout_ms);
  if (!welcome || welcome.frame.type != proc::FrameType::kHelloOk) {
    return std::nullopt;
  }
  Registration reg;
  try {
    const json::Value doc = json::parse(welcome.frame.payload);
    if (const json::Value* error = doc.find("error")) {
      throw ProtocolVersionError("agent: scheduler refused registration: " +
                                 error->as_string());
    }
    reg.id = static_cast<int>(doc.at("id").as_number());
    if (const json::Value* field = doc.find("token")) {
      reg.token = field->as_string();
    }
    if (const json::Value* field = doc.find("proto")) {
      reg.proto = static_cast<std::uint16_t>(field->as_number());
    }
  } catch (const ProtocolVersionError&) {
    throw;
  } catch (const std::exception&) {
    return std::nullopt;  // malformed welcome: treat as transport failure
  }
  return reg;
}

}  // namespace

void fetch_object(Connection& conn, store::ObjectStore& objects,
                  const store::Digest& key) {
  constexpr int kMaxFetchAttempts = 3;
  for (int attempt = 1;; ++attempt) {
    if (!conn.send_frame(proc::FrameType::kFetch, key.to_hex())) {
      throw ConnectionLostError("agent: scheduler hung up during fetch of " +
                                key.to_hex());
    }
    const proc::ReadResult reply = conn.recv_frame();
    if (reply.status == proc::ReadStatus::kCorrupt) {
      // The per-unit exchange is strictly request/reply, so the mangled
      // frame was our kObject: ask again rather than store garbage.
      obs::counter("net.fetch_corrupt").add(1);
      if (attempt >= kMaxFetchAttempts) {
        throw TransientError("agent: object " + key.to_hex() +
                             " arrived corrupt " +
                             std::to_string(kMaxFetchAttempts) +
                             " times: " + reply.error);
      }
      continue;
    }
    if (!reply) {
      throw ConnectionLostError(
          "agent: scheduler hung up before answering fetch of " +
          key.to_hex());
    }
    if (reply.frame.type == proc::FrameType::kMissing) {
      // The scheduler dispatched a unit whose inputs it cannot serve — a
      // scheduler-side bug, so don't retry.
      throw PermanentError("agent: scheduler has no object " + key.to_hex() +
                           " (pair units are dispatched only after their "
                           "runs complete)");
    }
    if (reply.frame.type != proc::FrameType::kObject) {
      throw PermanentError("agent: unexpected frame type " +
                           std::to_string(
                               static_cast<int>(reply.frame.type)) +
                           " in reply to fetch");
    }
    std::string error;
    const auto object = decode_object_payload(reply.frame.payload, &error);
    if (!object) throw PermanentError("agent: bad object frame: " + error);
    if (!(object->key == key)) {
      throw PermanentError("agent: fetched " + key.to_hex() +
                           " but the scheduler sent " + object->key.to_hex());
    }
    const std::span<const std::uint8_t> bytes(
        reinterpret_cast<const std::uint8_t*>(object->bytes.data()),
        object->bytes.size());
    // Full envelope validation before the store accepts the bytes: the
    // digest matched, but the payload checksum is what proves the bytes
    // survived the trip. A mismatch means corruption the frame CRC could
    // not see (or predates it) — re-fetch, never write.
    try {
      const store::Envelope envelope = store::validate_envelope(bytes);
      try {
        objects.put(key, envelope.kind, bytes);
      } catch (const IoError& disk) {
        // Local disk fault during admission (full disk, device error —
        // possibly injected io chaos riding on top of net chaos). The
        // bytes were fine; the *disk* failed. Transient from the fleet's
        // point of view: the scheduler re-queues the unit and a healthy
        // agent picks it up.
        obs::counter("net.store_admission_failures").add(1);
        throw TransientError("agent: cannot admit object " + key.to_hex() +
                             " into the local store: " + disk.what());
      }
    } catch (const ParseError& bad) {
      obs::counter("net.fetch_corrupt").add(1);
      if (attempt >= kMaxFetchAttempts) {
        throw TransientError("agent: object " + key.to_hex() +
                             " failed envelope validation " +
                             std::to_string(kMaxFetchAttempts) +
                             " times: " + bad.what());
      }
      continue;
    }
    obs::counter("net.objects_fetched").add(1);
    return;
  }
}

int run_agent(store::ArtifactStore& store, const AgentConfig& config) {
  const auto injector = support::FailureInjector::from_env();
  const std::string name =
      config.name.empty() ? default_agent_name() : config.name;
  // Seeded jitter so a whole fleet redialing a restarted scheduler does
  // not thunder in lock-step; per-agent stream via the name.
  std::uint64_t name_hash = 1469598103934665603ull;
  for (const char c : name) {
    name_hash = (name_hash ^ static_cast<unsigned char>(c)) *
                1099511628211ull;
  }
  Rng backoff_rng(hash_combine(mix64(config.chaos.seed), name_hash));

  std::shared_ptr<Connection> conn;
  std::string token;  // session identity; survives reconnects
  bool registered = false;
  int consecutive_failures = 0;
  std::uint64_t units_served = 0;

  const auto drop_connection = [&] {
    if (conn) conn->close();
    conn.reset();
  };

  while (true) {
    // (Re)establish the connection. The session token rides along, so on
    // the scheduler side this is a resume, not a new agent.
    while (!conn) {
      if (consecutive_failures > 0) {
        const double base =
            config.reconnect_backoff_ms *
            static_cast<double>(1ull << std::min(consecutive_failures - 1, 10));
        const double delay_ms =
            std::min(base, 2'000.0) * backoff_rng.uniform(0.5, 1.5);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
      try {
        std::unique_ptr<Connection> fresh = maybe_wrap_chaos(
            TcpConnection::connect(config.host, config.port,
                                   config.connect_timeout_ms),
            config.chaos);
        std::optional<Registration> reg;
        try {
          reg = register_with(*fresh, name, token,
                              config.connect_timeout_ms);
        } catch (const ProtocolVersionError& refused) {
          std::fprintf(stderr, "%s\n", refused.what());
          return 1;
        }
        if (!reg) {
          throw ConnectionLostError("agent: registration not acknowledged");
        }
        fresh->set_version(reg->proto);
        token = reg->token;
        if (registered) obs::counter("net.reconnects").add(1);
        registered = true;
        consecutive_failures = 0;
        conn = std::shared_ptr<Connection>(std::move(fresh));
      } catch (const std::exception& error) {
        ++consecutive_failures;
        if (consecutive_failures >= config.reconnect_max) {
          std::fprintf(stderr, "agent: %s (gave up after %d attempts)\n",
                       error.what(), consecutive_failures);
          // Exit 0 once registered: an unreachable scheduler after a
          // completed registration means the campaign is over (or died);
          // either way the agent must not linger. Exit 1 when we never
          // got in at all — that is an operator error worth flagging.
          return registered ? 0 : 1;
        }
      }
    }

    const proc::ReadResult incoming = conn->recv_frame();
    if (incoming.status != proc::ReadStatus::kFrame) {
      // EOF, torn frame, or corrupt frame: all spell "this connection is
      // done". The session survives — reconnect and resume.
      drop_connection();
      continue;
    }
    if (incoming.frame.type == proc::FrameType::kShutdown) {
      return 0;  // campaign over; do NOT reconnect
    }
    if (incoming.frame.type != proc::FrameType::kRequest) {
      std::fprintf(stderr, "agent: unexpected frame type %d\n",
                   static_cast<int>(incoming.frame.type));
      drop_connection();
      continue;
    }

    std::string unit = "?";
    try {
      const json::Value request = json::parse(incoming.frame.payload);
      unit = request.at("unit").as_string();
      // Heartbeats go through the connection object (not the raw fd) so
      // chaos injection applies to them like any other frame.
      const proc::Heartbeater heartbeater(
          [connection = conn.get()] {
            connection->send_frame(proc::FrameType::kHeartbeat, {});
          },
          config.heartbeat_interval_ms);
      for (const store::Digest& input : proc::unit_input_keys(request)) {
        if (!store.objects().contains(input)) {
          fetch_object(*conn, store.objects(), input);
        }
      }
      // Injected crashes/hangs fire in whichever process executes the
      // unit — here, in distributed mode (the scheduler waits out the
      // lease, then re-queues).
      injector.apply_execution_hooks(unit);
      const json::Value reply = proc::execute_unit(store, request);
      const auto result_key =
          store::Digest::from_hex(reply.at("key").as_string());
      ANACIN_CHECK(result_key.has_value(), "execute_unit returned a bad key");
      publish_object(*conn, store.objects(), *result_key);
      if (!conn->send_frame(proc::FrameType::kResult, reply.dump())) {
        throw ConnectionLostError("agent: scheduler hung up mid-reply");
      }
    } catch (const ConnectionLostError&) {
      // Mid-unit transport loss. Drop the unit on the floor — after the
      // reconnect the scheduler re-dispatches it and the warm store makes
      // the re-execution free.
      drop_connection();
      continue;
    } catch (const std::exception& error) {
      json::Value payload = json::Value::object();
      payload.set("kind", dynamic_cast<const TransientError*>(&error) !=
                                  nullptr
                              ? "transient"
                              : "permanent");
      payload.set("error", error.what());
      if (!conn->send_frame(proc::FrameType::kFail, payload.dump())) {
        drop_connection();
        continue;
      }
    }
    if (config.max_units > 0 && ++units_served >= config.max_units) {
      return 0;  // deliberate retirement (tests exercise requeue with this)
    }
  }
}

}  // namespace anacin::net

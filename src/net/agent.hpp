#pragma once

#include <cstdint>
#include <string>

#include "store/store.hpp"

namespace anacin::net {

struct AgentConfig {
  /// Scheduler to join.
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// How the agent introduces itself in kHello (diagnostics only; the
  /// scheduler assigns the numeric id). Default: "<hostname>:<pid>".
  std::string name;
  /// How often to heartbeat the scheduler while a unit executes — must be
  /// well under the scheduler's heartbeat timeout.
  double heartbeat_interval_ms = 50.0;
  int connect_timeout_ms = 10'000;
  /// Exit after serving this many units (0 = serve until the scheduler
  /// hangs up). Tests use 1 to exercise mid-campaign agent loss.
  std::uint64_t max_units = 0;
};

/// Run one agent: connect to the scheduler, register, then serve work-unit
/// requests until the scheduler closes the connection (clean exit 0 — an
/// agent never outlives its campaign, so killing the scheduler or letting
/// it finish leaves no orphaned agents). Results travel content-addressed:
/// the agent fetches missing input artifacts from the scheduler by hash,
/// executes the unit against its own store (a warm store means zero
/// simulation — execute_unit returns on the existing artifact), publishes
/// the result object by hash, and only then reports the unit done. Returns
/// a process exit code; failures to even register print to stderr and
/// return non-zero.
int run_agent(store::ArtifactStore& store, const AgentConfig& config);

}  // namespace anacin::net

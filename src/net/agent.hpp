#pragma once

#include <cstdint>
#include <string>

#include "net/chaos.hpp"
#include "net/socket.hpp"
#include "store/store.hpp"
#include "support/error.hpp"

namespace anacin::net {

struct AgentConfig {
  /// Scheduler to join.
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// How the agent introduces itself in kHello (diagnostics only; the
  /// scheduler assigns the numeric id). Default: "<hostname>:<pid>".
  std::string name;
  /// How often to heartbeat the scheduler while a unit executes — must be
  /// well under the scheduler's heartbeat timeout.
  double heartbeat_interval_ms = 50.0;
  int connect_timeout_ms = 10'000;
  /// Exit after serving this many units (0 = serve until the scheduler
  /// hangs up). Tests use 1 to exercise mid-campaign agent loss.
  std::uint64_t max_units = 0;
  /// Reconnection policy: after losing the scheduler connection the agent
  /// re-dials with seeded exponential backoff (base doubling per failure,
  /// ±50% jitter) and presents its session token so the scheduler resumes
  /// the session instead of re-registering it. This many *consecutive*
  /// failures end the agent — exit 0 when it had registered (the
  /// scheduler is simply gone, i.e. the campaign ended hard), exit 1 when
  /// it never managed to register at all.
  int reconnect_max = 5;
  double reconnect_backoff_ms = 100.0;
  /// Deterministic fault injection applied to the agent's side of the
  /// connection (agent→scheduler direction). Inert by default.
  ChaosConfig chaos;
};

/// The scheduler connection died mid-conversation (hang-up during a
/// fetch/publish/reply). Distinct from a unit failure: the agent does not
/// report kFail for these — it reconnects with its session token and lets
/// the scheduler re-dispatch the unit.
class ConnectionLostError : public TransientError {
 public:
  explicit ConnectionLostError(const std::string& what)
      : TransientError(what) {}
};

/// Pull one missing input object from the scheduler into the local store,
/// validating the envelope before the store admits a byte. Corruption —
/// a kCorrupt frame (CRC mismatch) or a well-framed object whose envelope
/// checksum fails — triggers a re-fetch (net.fetch_corrupt counts them),
/// up to 3 attempts before the unit fails transient; a corrupted transfer
/// is never written. Exposed for the byte-flip regression test.
void fetch_object(Connection& conn, store::ObjectStore& objects,
                  const store::Digest& key);

/// Run one agent: connect to the scheduler, register (negotiating the
/// frame protocol version and receiving a session token), then serve
/// work-unit requests until the scheduler sends kShutdown (clean exit 0).
/// A lost connection is survived, not fatal: the agent redials with
/// backoff and resumes its session, and the scheduler re-dispatches
/// whatever unit was in flight — answered from the agent's warm store, so
/// a blip costs a round-trip, not a re-simulation. Results travel
/// content-addressed: the agent fetches missing input artifacts from the
/// scheduler by hash, executes the unit against its own store (a warm
/// store means zero simulation — execute_unit returns on the existing
/// artifact), publishes the result object by hash, and only then reports
/// the unit done. Returns a process exit code; failure to ever register
/// (including a protocol version rejection) prints to stderr and returns
/// non-zero.
int run_agent(store::ArtifactStore& store, const AgentConfig& config);

}  // namespace anacin::net

#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/obs.hpp"
#include "support/error.hpp"

namespace anacin::net {

namespace {

using Clock = std::chrono::steady_clock;

void ignore_sigpipe() {
  // A peer can vanish between our liveness check and our write; without
  // this the resulting EPIPE would kill the process instead of surfacing
  // as a failed send. Process-wide and idempotent (worker pool does the
  // same for pipes).
  ::signal(SIGPIPE, SIG_IGN);
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// poll() one fd for `events`, retrying EINTR against a fixed deadline so
/// a signal delivered mid-wait (the EINTR regression test does exactly
/// this) consumes budget instead of resetting or aborting it. Returns
/// poll()'s result: >0 ready, 0 timeout, <0 non-EINTR error.
int poll_deadline(int fd, short events, int timeout_ms) {
  Clock::time_point deadline{};
  if (timeout_ms >= 0) {
    deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  }
  for (;;) {
    int budget = -1;
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      budget = left.count() > 0 ? static_cast<int>(left.count()) : 0;
    }
    pollfd pfd{fd, events, 0};
    const int ready = ::poll(&pfd, 1, budget);
    if (ready < 0 && errno == EINTR) {
      if (timeout_ms >= 0 && Clock::now() >= deadline) return 0;
      continue;
    }
    return ready;
  }
}

}  // namespace

TcpConnection::TcpConnection(int fd) : fd_(fd) { ignore_sigpipe(); }

TcpConnection::~TcpConnection() { close(); }

std::unique_ptr<TcpConnection> TcpConnection::connect(const std::string& host,
                                                      std::uint16_t port,
                                                      int timeout_ms) {
  ignore_sigpipe();
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const std::string port_text = std::to_string(port);
  if (const int rc = ::getaddrinfo(host.c_str(), port_text.c_str(), &hints,
                                   &found);
      rc != 0) {
    throw IoError("cannot resolve " + host + ":" + port_text + ": " +
                  ::gai_strerror(rc));
  }

  int fd = -1;
  std::string error = "no addresses";
  for (const addrinfo* info = found; info != nullptr; info = info->ai_next) {
    fd = ::socket(info->ai_family, info->ai_socktype | SOCK_CLOEXEC,
                  info->ai_protocol);
    if (fd < 0) {
      error = std::strerror(errno);
      continue;
    }
    // Non-blocking connect so the timeout is ours, not the kernel's
    // (which can be minutes for an unreachable host).
    const int flags = ::fcntl(fd, F_GETFL);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, info->ai_addr, info->ai_addrlen);
    if (rc < 0 && errno == EINTR) {
      // POSIX: an interrupted connect() proceeds asynchronously, exactly
      // like EINPROGRESS — fall through to the poll below.
      errno = EINPROGRESS;
    }
    if (rc < 0 && errno == EINPROGRESS) {
      rc = poll_deadline(fd, POLLOUT, timeout_ms);
      if (rc > 0) {
        int so_error = 0;
        socklen_t len = sizeof(so_error);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
        rc = so_error == 0 ? 0 : -1;
        errno = so_error;
      } else if (rc == 0) {
        rc = -1;
        errno = ETIMEDOUT;
      }
    }
    if (rc == 0) {
      ::fcntl(fd, F_SETFL, flags);  // back to blocking for frame I/O
      break;
    }
    error = std::strerror(errno);
    close_fd(fd);
  }
  ::freeaddrinfo(found);
  if (fd < 0) {
    throw IoError("cannot connect to " + host + ":" + port_text + ": " +
                  error);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<TcpConnection>(fd);
}

void TcpConnection::close() {
  // exchange() so exactly one closer wins when close() races itself (the
  // destructor vs an explicit close from another thread).
  const int fd = fd_.exchange(-1);
  if (fd < 0) return;
  // shutdown() first: another thread blocked in recv_frame wakes with a
  // clean EOF instead of reading from a closed (possibly recycled) fd.
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

bool TcpConnection::send_frame(proc::FrameType type,
                               std::string_view payload) {
  const int fd = fd_.load();
  if (fd < 0) return false;
  static obs::Counter& frames = obs::counter("net.frames_sent");
  static obs::Counter& bytes = obs::counter("net.bytes_sent");
  const std::lock_guard<std::mutex> lock(write_mutex_);
  if (!proc::write_frame(fd, type, payload, version_)) return false;
  frames.add(1);
  bytes.add(proc::frame_overhead(version_) + payload.size());
  return true;
}

bool TcpConnection::send_raw(std::string_view bytes) {
  const int fd = fd_.load();
  if (fd < 0) return false;
  static obs::Counter& frames = obs::counter("net.frames_sent");
  static obs::Counter& sent = obs::counter("net.bytes_sent");
  const std::lock_guard<std::mutex> lock(write_mutex_);
  const char* cursor = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t written = ::write(fd, cursor, left);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    cursor += written;
    left -= static_cast<std::size_t>(written);
  }
  frames.add(1);
  sent.add(bytes.size());
  return true;
}

proc::ReadResult TcpConnection::recv_frame(int timeout_ms) {
  const int fd = fd_.load();
  if (fd < 0) {
    proc::ReadResult result;
    result.status = proc::ReadStatus::kEof;
    return result;
  }
  proc::ReadResult result = proc::read_frame(fd, timeout_ms, version_);
  if (result) {
    obs::counter("net.frames_received").add(1);
    obs::counter("net.bytes_received")
        .add(proc::frame_overhead(version_) + result.frame.payload.size());
  } else if (result.status == proc::ReadStatus::kCorrupt) {
    obs::counter("net.frames_corrupt").add(1);
  }
  return result;
}

TcpListener::TcpListener(const std::string& host, std::uint16_t port) {
  ignore_sigpipe();
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw IoError(std::string("socket failed: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close_fd(fd);
    throw IoError("listener bind address must be an IPv4 literal, got '" +
                  host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string error = std::strerror(errno);
    close_fd(fd);
    throw IoError("cannot bind " + host + ":" + std::to_string(port) + ": " +
                  error);
  }
  if (::listen(fd, 64) < 0) {
    const std::string error = std::strerror(errno);
    close_fd(fd);
    throw IoError("listen failed: " + error);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  fd_.store(fd);
}

TcpListener::~TcpListener() { close(); }

std::unique_ptr<TcpConnection> TcpListener::accept(int timeout_ms) {
  const int listen_fd = fd_.load();
  if (listen_fd < 0) return nullptr;
  const int ready = poll_deadline(listen_fd, POLLIN, timeout_ms);
  if (ready <= 0) return nullptr;
  int fd = -1;
  for (;;) {
    fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) break;
    // ECONNABORTED: the peer gave up between poll and accept — the
    // listener itself is fine, so report "nothing arrived" not "broken".
    if (errno == EINTR) continue;
    return nullptr;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<TcpConnection>(fd);
}

void TcpListener::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

}  // namespace anacin::net

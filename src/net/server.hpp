#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/chaos.hpp"
#include "net/lease.hpp"
#include "net/socket.hpp"
#include "proc/executor.hpp"
#include "store/store.hpp"

namespace anacin::net {

struct AgentServerConfig {
  /// Listener address; port 0 binds an ephemeral port (see port()).
  std::string bind_host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Declare an agent's connection stalled when a unit is in flight and no
  /// frame (result or heartbeat) has arrived for this long; the scheduler
  /// then closes the connection, which turns a wedged-but-alive agent into
  /// a reconnect (0 disables the stall detector).
  double heartbeat_timeout_ms = 10'000.0;
  /// How long execute() waits for an idle agent before giving up on the
  /// attempt (transient — the supervisor's retries wait again, so a fleet
  /// that lost every agent gets this long per retry for a replacement to
  /// join).
  double checkout_timeout_ms = 60'000.0;
  /// Unit lease window (see lease.hpp): a disconnected session has this
  /// long — measured from the last frame it sent — to reconnect and
  /// resume before the unit is re-queued on another agent.
  double unit_lease_ms = 30'000.0;
  /// Backpressure: at most this many units admitted to the fabric at
  /// once; further execute() calls queue (0 = unbounded). Bounds the
  /// scheduler's memory for request/result JSON under wide campaigns.
  std::size_t max_inflight = 0;
  /// Deterministic fault injection applied to every accepted connection
  /// (scheduler→agent direction). Inert by default.
  ChaosConfig chaos;
};

/// The scheduler's side of the distributed fabric: accepts `anacin agent`
/// connections and executes campaign work units on them, one unit per
/// agent at a time (proc::UnitExecutor — the campaign cannot tell this
/// apart from the local worker pool). The unit exchange is synchronous
/// per agent: send kRequest, then serve kFetch (ship objects the agent is
/// missing) and absorb kPublish (the unit's result object) until kResult /
/// kFail. Object traffic rides the content-addressed store, so a warm
/// agent publishes from cache without simulating, and the scheduler
/// short-circuits dispatch entirely when its own store already holds the
/// request's result ("result_key").
///
/// Registration issues a session token (kHello/kHelloOk, which also
/// negotiate the frame protocol version — see proc/protocol.hpp). The
/// token outlives the TCP connection: an agent that loses its socket
/// reconnects, presents the token, and the new connection is spliced into
/// the existing session — the execute() call that was mid-unit on that
/// session re-dispatches the same unit on the fresh connection, and the
/// agent answers from its warm store. Publishes are idempotent (the store
/// is content-addressed), so a result that was lost in flight is simply
/// published again.
///
/// Failure model (see docs/DISTRIBUTED.md): a dropped connection, torn or
/// corrupt frame, or heartbeat stall costs a reconnect, NOT a re-queue.
/// Only lease expiry — the session stayed gone for the whole
/// unit_lease_ms window — maps to WorkerCrashError, which the supervisor
/// retries on a surviving agent. The sweep journal (core/journal.hpp)
/// stays the authoritative ledger above this layer: a scheduler crash is
/// replayed with --resume exactly like a local one.
///
/// The destructor sends kShutdown and closes every connection; agents
/// exit 0 and do not reconnect, so tearing down the scheduler leaves no
/// orphaned remote processes.
class AgentServer : public proc::UnitExecutor {
 public:
  AgentServer(AgentServerConfig config, store::ArtifactStore& store);
  ~AgentServer() override;

  AgentServer(const AgentServer&) = delete;
  AgentServer& operator=(const AgentServer&) = delete;

  /// The bound listener port (after an ephemeral bind).
  std::uint16_t port() const;

  /// Block until at least `count` agents are registered (`timeout_ms` < 0
  /// waits forever). Returns false on timeout.
  bool wait_for_agents(std::size_t count, int timeout_ms = -1);

  /// Sessions currently registered (idle + executing + briefly
  /// disconnected but within their lease).
  std::size_t agent_count() const;

  /// Execute one work unit on some idle agent. Thread safe; blocks until
  /// the unit finishes, its lease expires (WorkerCrashError), or no agent
  /// frees up within checkout_timeout_ms (also WorkerCrashError — both
  /// are transient, so supervisor retries re-queue the unit).
  json::Value execute(const std::string& unit_id,
                      const json::Value& request) override;

 private:
  /// One registered agent. The session — not the connection — is the unit
  /// of identity: `conn` is replaced on reconnect and `generation` counts
  /// the splices, which is how a waiting execute() notices the session
  /// came back.
  struct Session {
    std::string token;
    std::string name;
    int id = 0;
    std::uint64_t generation = 0;
    bool busy = false;
    std::shared_ptr<Connection> conn;
  };
  using SessionPtr = std::shared_ptr<Session>;

  void accept_loop();
  /// Handle one freshly accepted connection: handshake, version
  /// negotiation, and either a new session or a token resume.
  void register_connection(std::unique_ptr<TcpConnection> raw);
  SessionPtr checkout(const std::string& unit_id);
  void checkin(const SessionPtr& session);
  /// Remove a session for good (lease expired or teardown).
  void drop_session(const SessionPtr& session);
  /// Wait for `session` to reconnect (generation to pass `seen`) until the
  /// unit's lease deadline. True when it reconnected in time.
  bool await_reconnect(const SessionPtr& session, std::uint64_t seen,
                       const std::string& unit_id);
  [[noreturn]] void expire_and_throw(const SessionPtr& session,
                                     const std::string& unit_id,
                                     const std::string& reason);
  /// Answer one kFetch: ship the object or admit it is missing.
  void serve_fetch(Connection& conn, const std::string& agent_name,
                   const std::string& payload);
  /// Absorb one kPublish into the scheduler store.
  void absorb_publish(const std::string& agent_name,
                      const std::string& payload);

  AgentServerConfig config_;
  store::ArtifactStore& store_;
  TcpListener listener_;
  LeaseTable leases_;

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;      // sessions entering idle_
  std::condition_variable reattach_cv_;  // generation bumps
  std::condition_variable inflight_cv_;  // backpressure slots freeing
  std::unordered_map<std::string, SessionPtr> sessions_;  // by token
  std::deque<SessionPtr> idle_;
  std::size_t inflight_ = 0;
  std::size_t waiting_ = 0;  // execute() calls queued on backpressure
  int next_agent_id_ = 0;
  std::uint64_t token_salt_ = 0;
  bool stopping_ = false;

  std::thread acceptor_;
};

}  // namespace anacin::net

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "proc/executor.hpp"
#include "store/store.hpp"

namespace anacin::net {

struct AgentServerConfig {
  /// Listener address; port 0 binds an ephemeral port (see port()).
  std::string bind_host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Declare an agent dead when a unit is in flight and no frame (result
  /// or heartbeat) has arrived for this long (0 disables the stall
  /// detector — then only a closed connection kills an agent).
  double heartbeat_timeout_ms = 10'000.0;
  /// How long execute() waits for an idle agent before giving up on the
  /// attempt (transient — the supervisor's retries wait again, so a fleet
  /// that lost every agent gets this long per retry for a replacement to
  /// join).
  double checkout_timeout_ms = 60'000.0;
};

/// The scheduler's side of the distributed fabric: accepts `anacin agent`
/// connections and executes campaign work units on them, one unit per
/// agent at a time (proc::UnitExecutor — the campaign cannot tell this
/// apart from the local worker pool). The unit exchange is synchronous
/// per agent: send kRequest, then serve kFetch (ship objects the agent is
/// missing) and absorb kPublish (the unit's result object) until kResult /
/// kFail. Object traffic rides the content-addressed store, so a warm
/// agent publishes from cache without simulating, and the scheduler
/// short-circuits dispatch entirely when its own store already holds the
/// request's result ("result_key").
///
/// Failure model: a dropped connection, torn frame, or heartbeat stall
/// maps to WorkerCrashError — transient, so the supervisor re-queues the
/// unit, and the next execute() checks out a surviving agent. The sweep
/// journal (core/journal.hpp) stays the authoritative ledger above this
/// layer: a scheduler crash is replayed with --resume exactly like a local
/// one.
///
/// The destructor closes every connection; agents exit 0 on the EOF, so
/// tearing down the scheduler leaves no orphaned remote processes.
class AgentServer : public proc::UnitExecutor {
 public:
  AgentServer(AgentServerConfig config, store::ArtifactStore& store);
  ~AgentServer() override;

  AgentServer(const AgentServer&) = delete;
  AgentServer& operator=(const AgentServer&) = delete;

  /// The bound listener port (after an ephemeral bind).
  std::uint16_t port() const;

  /// Block until at least `count` agents are connected (`timeout_ms` < 0
  /// waits forever). Returns false on timeout.
  bool wait_for_agents(std::size_t count, int timeout_ms = -1);

  /// Agents currently connected (idle + executing).
  std::size_t agent_count() const;

  /// Execute one work unit on some idle agent. Thread safe; blocks until
  /// the unit finishes, the owning agent dies (WorkerCrashError), or no
  /// agent frees up within checkout_timeout_ms (also WorkerCrashError —
  /// both are transient, so supervisor retries re-queue the unit).
  json::Value execute(const std::string& unit_id,
                      const json::Value& request) override;

 private:
  struct Agent {
    std::unique_ptr<TcpConnection> conn;
    std::string name;
    int id = 0;
  };

  void accept_loop();
  std::unique_ptr<Agent> checkout(const std::string& unit_id);
  void checkin(std::unique_ptr<Agent> agent);
  /// Drop a dead agent and throw the WorkerCrashError that re-queues its
  /// unit.
  [[noreturn]] void drop_and_throw(std::unique_ptr<Agent> agent,
                                   const std::string& unit_id,
                                   const std::string& reason);
  /// Answer one kFetch: ship the object or admit it is missing.
  void serve_fetch(Agent& agent, const std::string& payload);
  /// Absorb one kPublish into the scheduler store.
  void absorb_publish(Agent& agent, const std::string& payload);

  AgentServerConfig config_;
  store::ArtifactStore& store_;
  TcpListener listener_;

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::deque<std::unique_ptr<Agent>> idle_;
  std::size_t connected_ = 0;
  int next_agent_id_ = 0;
  bool stopping_ = false;

  std::thread acceptor_;
};

}  // namespace anacin::net

#pragma once

#include <string>
#include <vector>

namespace anacin::viz {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Stroke/fill styling for shapes.
struct Style {
  std::string fill = "none";
  std::string stroke = "#333333";
  double stroke_width = 1.0;
  double opacity = 1.0;
  /// SVG dash pattern, empty for solid.
  std::string dash;
};

struct TextStyle {
  double size = 12.0;
  /// "start", "middle", or "end".
  std::string anchor = "start";
  std::string fill = "#222222";
  bool bold = false;
  /// Rotation in degrees about the text position.
  double rotate = 0.0;
};

/// Tiny SVG writer — enough for the violin, bar, line, and event-graph
/// figures this project regenerates. Elements render in insertion order.
class SvgDocument {
public:
  SvgDocument(double width, double height);

  double width() const { return width_; }
  double height() const { return height_; }

  void line(double x1, double y1, double x2, double y2, const Style& style);
  void circle(double cx, double cy, double radius, const Style& style);
  void rect(double x, double y, double w, double h, const Style& style);
  void polygon(const std::vector<Point>& points, const Style& style);
  void polyline(const std::vector<Point>& points, const Style& style);
  void text(double x, double y, const std::string& content,
            const TextStyle& style);
  /// Raw element escape hatch.
  void raw(const std::string& element);

  std::string render() const;
  /// Write render() to a file; creates parent directories as needed.
  void save(const std::string& path) const;

private:
  double width_;
  double height_;
  std::vector<std::string> elements_;
};

}  // namespace anacin::viz

#include "viz/event_graph_render.hpp"

#include <algorithm>
#include <cmath>

#include "sim/types.hpp"
#include "support/error.hpp"

namespace anacin::viz {

namespace {

const char* node_fill(trace::EventType type) {
  switch (type) {
    case trace::EventType::kInit:
    case trace::EventType::kFinalize:
      return "#4c9a57";  // green
    case trace::EventType::kSend:
      return "#4878c8";  // blue
    case trace::EventType::kRecv:
      return "#c8504c";  // red
    case trace::EventType::kFault:
      return "#d9862c";  // orange
  }
  return "#999999";
}

bool is_collective_event(const graph::EventNode& node) {
  return node.tag >= sim::kCollectiveTagBase;
}

}  // namespace

SvgDocument render_event_graph(const graph::EventGraph& graph,
                               const EventGraphRenderConfig& config) {
  const int num_ranks = graph.num_ranks();
  ANACIN_CHECK(num_ranks > 0, "event graph has no ranks");

  const double left_margin = 76.0;
  const double top_margin = config.title.empty() ? 24.0 : 48.0;

  // Horizontal position: Lamport clock (so arrows always point right).
  const double width =
      left_margin +
      config.column_width * static_cast<double>(graph.max_lamport() + 1);
  const double height =
      top_margin + config.row_height * static_cast<double>(num_ranks);

  SvgDocument svg(width, height);
  if (!config.title.empty()) {
    svg.text(width / 2.0, 24.0, config.title,
             {.size = 15, .anchor = "middle", .fill = "#111111",
              .bold = true, .rotate = 0});
  }

  const auto node_x = [&](const graph::EventNode& node) {
    return left_margin +
           config.column_width * static_cast<double>(node.lamport);
  };
  const auto rank_y = [&](int rank) {
    return top_margin + config.row_height * (static_cast<double>(rank) + 0.5);
  };
  const auto visible = [&](const graph::EventNode& node) {
    return !(config.hide_collective_traffic && is_collective_event(node));
  };

  // Row guides and labels.
  for (int r = 0; r < num_ranks; ++r) {
    const double y = rank_y(r);
    svg.line(left_margin - 10, y, width - 8, y,
             {.fill = "none", .stroke = "#cccccc", .stroke_width = 1.0,
              .opacity = 1.0, .dash = "4,4"});
    svg.text(8, y + 4, "Rank " + std::to_string(r),
             {.size = 12, .anchor = "start", .fill = "#222222",
              .bold = false, .rotate = 0});
  }

  // Message arrows beneath the nodes.
  for (const auto& [send_node, recv_node] : graph.message_edges()) {
    const graph::EventNode& send = graph.node(send_node);
    const graph::EventNode& recv = graph.node(recv_node);
    if (!visible(send) || !visible(recv)) continue;
    const double x1 = node_x(send);
    const double y1 = rank_y(send.rank);
    const double x2 = node_x(recv);
    const double y2 = rank_y(recv.rank);
    svg.line(x1, y1, x2, y2,
             {.fill = "none", .stroke = "#888888", .stroke_width = 1.4,
              .opacity = 0.9, .dash = ""});
    // Arrowhead.
    const double angle = std::atan2(y2 - y1, x2 - x1);
    const double tip_x = x2 - std::cos(angle) * config.node_radius;
    const double tip_y = y2 - std::sin(angle) * config.node_radius;
    const double wing = 5.0;
    svg.polygon(
        {{tip_x, tip_y},
         {tip_x - wing * std::cos(angle - 0.45),
          tip_y - wing * std::sin(angle - 0.45)},
         {tip_x - wing * std::cos(angle + 0.45),
          tip_y - wing * std::sin(angle + 0.45)}},
        {.fill = "#888888", .stroke = "none", .stroke_width = 0,
         .opacity = 0.9, .dash = ""});
  }

  // Program-order connectors and nodes.
  for (int r = 0; r < num_ranks; ++r) {
    const graph::NodeId base = graph.rank_base(r);
    const std::size_t count = graph.rank_size(r);
    const double y = rank_y(r);
    graph::NodeId previous_visible = base;
    bool have_previous = false;
    for (std::size_t i = 0; i < count; ++i) {
      const graph::NodeId id = base + static_cast<graph::NodeId>(i);
      const graph::EventNode& node = graph.node(id);
      if (!visible(node)) continue;
      if (have_previous) {
        svg.line(node_x(graph.node(previous_visible)), y, node_x(node), y,
                 {.fill = "none", .stroke = "#555555", .stroke_width = 1.6,
                  .opacity = 1.0, .dash = ""});
      }
      previous_visible = id;
      have_previous = true;
    }
    for (std::size_t i = 0; i < count; ++i) {
      const graph::NodeId id = base + static_cast<graph::NodeId>(i);
      const graph::EventNode& node = graph.node(id);
      if (!visible(node)) continue;
      svg.circle(node_x(node), y, config.node_radius,
                 {.fill = node_fill(node.type), .stroke = "#222222",
                  .stroke_width = 1.0, .opacity = 1.0, .dash = ""});
      if (config.annotate_matches &&
          node.type == trace::EventType::kRecv) {
        svg.text(node_x(node), y - config.node_radius - 4,
                 "from " + std::to_string(node.peer),
                 {.size = 9, .anchor = "middle", .fill = "#555555",
                  .bold = false, .rotate = 0});
      }
    }
  }
  return svg;
}

}  // namespace anacin::viz

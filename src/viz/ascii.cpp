#include "viz/ascii.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/types.hpp"
#include "support/error.hpp"
#include "support/string_util.hpp"

namespace anacin::viz {

namespace {

char event_glyph(trace::EventType type) {
  switch (type) {
    case trace::EventType::kInit: return 'I';
    case trace::EventType::kSend: return 'S';
    case trace::EventType::kRecv: return 'R';
    case trace::EventType::kFinalize: return 'F';
    case trace::EventType::kFault: return 'X';
  }
  return '?';
}

}  // namespace

std::string ascii_event_graph(const graph::EventGraph& graph,
                              std::size_t max_edges) {
  std::ostringstream os;
  const auto columns = static_cast<std::size_t>(graph.max_lamport());
  for (int r = 0; r < graph.num_ranks(); ++r) {
    std::string row(columns, '-');
    const graph::NodeId base = graph.rank_base(r);
    for (std::size_t i = 0; i < graph.rank_size(r); ++i) {
      const graph::EventNode& node =
          graph.node(base + static_cast<graph::NodeId>(i));
      row[static_cast<std::size_t>(node.lamport - 1)] =
          event_glyph(node.type);
    }
    os << pad_right("rank " + std::to_string(r), 9) << row << '\n';
  }
  os << "legend: I=init S=send R=recv F=finalize X=fault; "
        "column = Lamport time\n";
  const auto& edges = graph.message_edges();
  const std::size_t shown = std::min(max_edges, edges.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const graph::EventNode& send = graph.node(edges[i].first);
    const graph::EventNode& recv = graph.node(edges[i].second);
    os << "  msg: rank " << send.rank << " @t" << send.lamport
       << "  ->  rank " << recv.rank << " @t" << recv.lamport;
    if (recv.posted_source == sim::kAnySource) os << "  (wildcard recv)";
    os << '\n';
  }
  if (edges.size() > shown) {
    os << "  ... " << (edges.size() - shown) << " more message(s)\n";
  }
  return os.str();
}

std::string ascii_histogram(std::span<const double> values, std::size_t bins,
                            std::size_t width) {
  ANACIN_CHECK(!values.empty(), "histogram of empty sample");
  ANACIN_CHECK(bins >= 1 && width >= 1, "invalid histogram shape");
  const double lo = *std::min_element(values.begin(), values.end());
  double hi = *std::max_element(values.begin(), values.end());
  if (hi <= lo) hi = lo + 1.0;

  std::vector<std::size_t> counts(bins, 0);
  for (const double v : values) {
    auto bin = static_cast<std::size_t>((v - lo) / (hi - lo) *
                                        static_cast<double>(bins));
    if (bin >= bins) bin = bins - 1;
    ++counts[bin];
  }
  const std::size_t peak = *std::max_element(counts.begin(), counts.end());

  std::ostringstream os;
  for (std::size_t b = 0; b < bins; ++b) {
    const double bin_lo = lo + (hi - lo) * static_cast<double>(b) /
                                   static_cast<double>(bins);
    const auto bar_length = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts[b]) /
                     static_cast<double>(peak) * static_cast<double>(width)));
    os << pad_left(format_fixed(bin_lo, 3), 12) << " | "
       << std::string(bar_length, '#') << ' ' << counts[b] << '\n';
  }
  return os.str();
}

std::string ascii_bar_chart(const std::vector<std::string>& labels,
                            std::span<const double> values,
                            std::size_t width) {
  ANACIN_CHECK(labels.size() == values.size(),
               "bar chart needs one label per value");
  ANACIN_CHECK(!values.empty(), "bar chart of empty data");
  double peak = *std::max_element(values.begin(), values.end());
  if (peak <= 0.0) peak = 1.0;
  std::size_t label_width = 0;
  for (const auto& label : labels) {
    label_width = std::max(label_width, label.size());
  }
  label_width = std::min<std::size_t>(label_width, 48);

  std::ostringstream os;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto bar_length = static_cast<std::size_t>(std::llround(
        values[i] / peak * static_cast<double>(width)));
    os << pad_right(labels[i], label_width) << " | "
       << std::string(bar_length, '#') << ' ' << format_fixed(values[i], 4)
       << '\n';
  }
  return os.str();
}

}  // namespace anacin::viz

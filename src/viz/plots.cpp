#include "viz/plots.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/error.hpp"

namespace anacin::viz {

std::vector<double> nice_ticks(double lo, double hi, int target_count) {
  ANACIN_CHECK(target_count >= 2, "need at least two ticks");
  if (hi <= lo) hi = lo + 1.0;
  const double raw_step = (hi - lo) / (target_count - 1);
  const double magnitude = std::pow(10.0, std::floor(std::log10(raw_step)));
  double step = magnitude;
  for (const double multiple : {1.0, 2.0, 2.5, 5.0, 10.0}) {
    if (magnitude * multiple >= raw_step) {
      step = magnitude * multiple;
      break;
    }
  }
  std::vector<double> ticks;
  const double start = std::floor(lo / step) * step;
  for (double t = start; t <= hi + step * 0.5; t += step) {
    if (t >= lo - step * 1e-9) ticks.push_back(t);
  }
  return ticks;
}

std::string tick_label(double value) {
  if (value == 0.0) return "0";
  char buffer[32];
  if (std::abs(value) >= 1e5 || std::abs(value) < 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.2g", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%g", value);
  }
  return buffer;
}

namespace {

/// Margins and coordinate mapping of a chart frame.
struct Frame {
  double left = 64.0;
  double right = 16.0;
  double top = 40.0;
  double bottom = 56.0;
  double width = 0.0;
  double height = 0.0;
  double x_min = 0.0;
  double x_max = 1.0;
  double y_min = 0.0;
  double y_max = 1.0;

  double plot_width() const { return width - left - right; }
  double plot_height() const { return height - top - bottom; }
  double x(double value) const {
    return left + (value - x_min) / (x_max - x_min) * plot_width();
  }
  double y(double value) const {
    return height - bottom -
           (value - y_min) / (y_max - y_min) * plot_height();
  }
};

const Style kAxisStyle{.fill = "none", .stroke = "#444444",
                       .stroke_width = 1.2, .opacity = 1.0, .dash = ""};
const Style kGridStyle{.fill = "none", .stroke = "#dddddd",
                       .stroke_width = 0.8, .opacity = 1.0, .dash = "3,3"};

void draw_title_and_labels(SvgDocument& svg, const Frame& frame,
                           const PlotConfig& config) {
  if (!config.title.empty()) {
    svg.text(frame.width / 2.0, frame.top - 16.0, config.title,
             {.size = 15, .anchor = "middle", .fill = "#111111",
              .bold = true, .rotate = 0});
  }
  if (!config.x_label.empty()) {
    svg.text(frame.left + frame.plot_width() / 2.0, frame.height - 12.0,
             config.x_label,
             {.size = 12, .anchor = "middle", .fill = "#222222",
              .bold = false, .rotate = 0});
  }
  if (!config.y_label.empty()) {
    svg.text(16.0, frame.top + frame.plot_height() / 2.0, config.y_label,
             {.size = 12, .anchor = "middle", .fill = "#222222",
              .bold = false, .rotate = -90});
  }
}

void draw_y_axis(SvgDocument& svg, const Frame& frame) {
  svg.line(frame.left, frame.top, frame.left, frame.height - frame.bottom,
           kAxisStyle);
  for (const double tick : nice_ticks(frame.y_min, frame.y_max)) {
    if (tick > frame.y_max + 1e-12) continue;
    const double y = frame.y(tick);
    svg.line(frame.left, y, frame.width - frame.right, y, kGridStyle);
    svg.line(frame.left - 4, y, frame.left, y, kAxisStyle);
    svg.text(frame.left - 8, y + 4, tick_label(tick),
             {.size = 10, .anchor = "end", .fill = "#333333", .bold = false,
              .rotate = 0});
  }
}

void draw_x_axis_line(SvgDocument& svg, const Frame& frame) {
  svg.line(frame.left, frame.height - frame.bottom,
           frame.width - frame.right, frame.height - frame.bottom,
           kAxisStyle);
}

const char* series_color(std::size_t index) {
  static const char* kPalette[] = {"#4878a8", "#b5534c", "#6a9a58",
                                   "#8066a9", "#c08a3e", "#5a9aa4"};
  return kPalette[index % (sizeof(kPalette) / sizeof(kPalette[0]))];
}

}  // namespace

SvgDocument violin_plot(const std::vector<ViolinSeries>& series,
                        const PlotConfig& config) {
  ANACIN_CHECK(!series.empty(), "violin plot needs at least one series");
  Frame frame;
  frame.width = config.width;
  frame.height = config.height;
  frame.x_min = 0.0;
  frame.x_max = static_cast<double>(series.size());

  double y_lo = series[0].data.summary.min;
  double y_hi = series[0].data.summary.max;
  for (const auto& violin : series) {
    y_lo = std::min(y_lo, violin.data.grid.front());
    y_hi = std::max(y_hi, violin.data.grid.back());
  }
  if (y_hi <= y_lo) y_hi = y_lo + 1.0;
  frame.y_min = std::min(0.0, y_lo);
  frame.y_max = y_hi + (y_hi - y_lo) * 0.05;

  SvgDocument svg(config.width, config.height);
  draw_y_axis(svg, frame);
  draw_x_axis_line(svg, frame);
  draw_title_and_labels(svg, frame, config);

  const double slot_width = frame.plot_width() / static_cast<double>(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    const auto& violin = series[i].data;
    const double center =
        frame.left + slot_width * (static_cast<double>(i) + 0.5);
    const double max_density =
        *std::max_element(violin.density.begin(), violin.density.end());
    const double half_width = slot_width * 0.38;

    std::vector<Point> outline;
    outline.reserve(violin.grid.size() * 2);
    for (std::size_t g = 0; g < violin.grid.size(); ++g) {
      const double dx = max_density > 0.0
                            ? violin.density[g] / max_density * half_width
                            : 0.0;
      outline.push_back({center - dx, frame.y(violin.grid[g])});
    }
    for (std::size_t g = violin.grid.size(); g-- > 0;) {
      const double dx = max_density > 0.0
                            ? violin.density[g] / max_density * half_width
                            : 0.0;
      outline.push_back({center + dx, frame.y(violin.grid[g])});
    }
    svg.polygon(outline, {.fill = series_color(i), .stroke = "#30506e",
                          .stroke_width = 1.0, .opacity = 0.55, .dash = ""});

    // Interquartile bar and median tick.
    const Style box{.fill = "none", .stroke = "#1b2a38", .stroke_width = 2.2,
                    .opacity = 0.9, .dash = ""};
    svg.line(center, frame.y(violin.summary.q1), center,
             frame.y(violin.summary.q3), box);
    svg.circle(center, frame.y(violin.summary.median), 3.0,
               {.fill = "#ffffff", .stroke = "#1b2a38", .stroke_width = 1.5,
                .opacity = 1.0, .dash = ""});

    svg.text(center, frame.height - frame.bottom + 18.0, series[i].label,
             {.size = 11, .anchor = "middle", .fill = "#222222",
              .bold = false, .rotate = 0});
  }
  return svg;
}

SvgDocument bar_plot(const std::vector<Bar>& bars, const PlotConfig& config) {
  ANACIN_CHECK(!bars.empty(), "bar plot needs at least one bar");
  SvgDocument svg(config.width, config.height);

  const double label_column = config.width * 0.45;
  const double top = 48.0;
  const double bottom = 36.0;
  const double row_height =
      (config.height - top - bottom) / static_cast<double>(bars.size());
  double max_value = 0.0;
  for (const auto& bar : bars) max_value = std::max(max_value, bar.value);
  if (max_value <= 0.0) max_value = 1.0;

  if (!config.title.empty()) {
    svg.text(config.width / 2.0, 24.0, config.title,
             {.size = 15, .anchor = "middle", .fill = "#111111",
              .bold = true, .rotate = 0});
  }

  const double bar_area = config.width - label_column - 24.0;
  for (std::size_t i = 0; i < bars.size(); ++i) {
    const double y = top + row_height * static_cast<double>(i);
    const double bar_height = row_height * 0.7;
    const double bar_width = bars[i].value / max_value * bar_area;
    svg.rect(label_column, y, bar_width, bar_height,
             {.fill = series_color(0), .stroke = "#30506e",
              .stroke_width = 0.8, .opacity = 0.85, .dash = ""});
    svg.text(label_column - 6.0, y + bar_height * 0.75, bars[i].label,
             {.size = 10, .anchor = "end", .fill = "#222222", .bold = false,
              .rotate = 0});
    char value_text[32];
    std::snprintf(value_text, sizeof(value_text), "%.3f", bars[i].value);
    svg.text(label_column + bar_width + 4.0, y + bar_height * 0.75,
             value_text,
             {.size = 9, .anchor = "start", .fill = "#444444", .bold = false,
              .rotate = 0});
  }
  if (!config.x_label.empty()) {
    svg.text(label_column + bar_area / 2.0, config.height - 10.0,
             config.x_label,
             {.size = 12, .anchor = "middle", .fill = "#222222",
              .bold = false, .rotate = 0});
  }
  return svg;
}

SvgDocument line_plot(const std::vector<LineSeries>& series,
                      const PlotConfig& config) {
  ANACIN_CHECK(!series.empty(), "line plot needs at least one series");
  Frame frame;
  frame.width = config.width;
  frame.height = config.height;

  bool first = true;
  for (const auto& line : series) {
    for (const Point& p : line.points) {
      if (first) {
        frame.x_min = frame.x_max = p.x;
        frame.y_min = frame.y_max = p.y;
        first = false;
      }
      frame.x_min = std::min(frame.x_min, p.x);
      frame.x_max = std::max(frame.x_max, p.x);
      frame.y_min = std::min(frame.y_min, p.y);
      frame.y_max = std::max(frame.y_max, p.y);
    }
  }
  ANACIN_CHECK(!first, "line plot needs at least one point");
  if (frame.x_max <= frame.x_min) frame.x_max = frame.x_min + 1.0;
  if (frame.y_max <= frame.y_min) frame.y_max = frame.y_min + 1.0;
  frame.y_min = std::min(0.0, frame.y_min);
  frame.y_max += (frame.y_max - frame.y_min) * 0.05;

  SvgDocument svg(config.width, config.height);
  draw_y_axis(svg, frame);
  draw_x_axis_line(svg, frame);
  for (const double tick : nice_ticks(frame.x_min, frame.x_max)) {
    if (tick > frame.x_max + 1e-12) continue;
    const double x = frame.x(tick);
    svg.line(x, frame.height - frame.bottom, x,
             frame.height - frame.bottom + 4, kAxisStyle);
    svg.text(x, frame.height - frame.bottom + 16, tick_label(tick),
             {.size = 10, .anchor = "middle", .fill = "#333333",
              .bold = false, .rotate = 0});
  }
  draw_title_and_labels(svg, frame, config);

  for (std::size_t s = 0; s < series.size(); ++s) {
    std::vector<Point> mapped;
    mapped.reserve(series[s].points.size());
    for (const Point& p : series[s].points) {
      mapped.push_back({frame.x(p.x), frame.y(p.y)});
    }
    svg.polyline(mapped, {.fill = "none", .stroke = series_color(s),
                          .stroke_width = 1.8, .opacity = 1.0, .dash = ""});
    for (const Point& p : mapped) {
      svg.circle(p.x, p.y, 2.4,
                 {.fill = series_color(s), .stroke = "none",
                  .stroke_width = 0, .opacity = 1.0, .dash = ""});
    }
    if (series.size() > 1) {
      svg.text(frame.left + 8,
               frame.top + 14 + 14 * static_cast<double>(s),
               series[s].label,
               {.size = 11, .anchor = "start", .fill = series_color(s),
                .bold = true, .rotate = 0});
    }
  }
  return svg;
}

}  // namespace anacin::viz

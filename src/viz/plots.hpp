#pragma once

#include <string>
#include <vector>

#include "analysis/kde.hpp"
#include "viz/svg.hpp"

namespace anacin::viz {

/// Shared chart-frame configuration.
struct PlotConfig {
  double width = 640.0;
  double height = 420.0;
  std::string title;
  std::string x_label;
  std::string y_label;
};

/// One violin: a category label plus its kernel-distance sample.
struct ViolinSeries {
  std::string label;
  analysis::ViolinData data;
};

/// Kernel-distance violin plot (paper Figs 5, 6, 7): one violin per
/// setting, mirrored KDE silhouette with median and interquartile box.
SvgDocument violin_plot(const std::vector<ViolinSeries>& series,
                        const PlotConfig& config);

struct Bar {
  std::string label;
  double value = 0.0;
};

/// Horizontal bar chart (paper Fig. 8's callstack frequencies; horizontal
/// so long call paths stay readable).
SvgDocument bar_plot(const std::vector<Bar>& bars, const PlotConfig& config);

struct LineSeries {
  std::string label;
  std::vector<Point> points;  // x ascending
};

/// Multi-series line plot with markers (slice-profile visualisations).
SvgDocument line_plot(const std::vector<LineSeries>& series,
                      const PlotConfig& config);

/// "Nice" tick positions covering [lo, hi].
std::vector<double> nice_ticks(double lo, double hi, int target_count = 6);

/// Compact tick label (trims trailing zeros).
std::string tick_label(double value);

}  // namespace anacin::viz

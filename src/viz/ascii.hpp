#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/event_graph.hpp"

namespace anacin::viz {

/// Terminal rendering of an event graph: one row per rank, one column per
/// Lamport tick; I = init, S = send, R = recv, F = finalize. Message
/// matches are listed below the grid (up to `max_edges`).
std::string ascii_event_graph(const graph::EventGraph& graph,
                              std::size_t max_edges = 24);

/// Horizontal histogram of a sample (terminal violin substitute).
std::string ascii_histogram(std::span<const double> values,
                            std::size_t bins = 10, std::size_t width = 40);

/// Labelled horizontal bars scaled to the maximum value.
std::string ascii_bar_chart(const std::vector<std::string>& labels,
                            std::span<const double> values,
                            std::size_t width = 40);

}  // namespace anacin::viz

#include "viz/heatmap.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/error.hpp"
#include "support/string_util.hpp"

namespace anacin::viz {

SvgDocument comm_matrix_heatmap(const graph::CommMatrix& matrix,
                                const std::string& title) {
  ANACIN_CHECK(matrix.num_ranks > 0, "empty communication matrix");
  const int n = matrix.num_ranks;
  const double cell = std::max(10.0, std::min(28.0, 560.0 / n));
  const double left = 56.0;
  const double top = title.empty() ? 32.0 : 56.0;
  const double width = left + cell * n + 24.0;
  const double height = top + cell * n + 40.0;

  SvgDocument svg(width, height);
  if (!title.empty()) {
    svg.text(width / 2.0, 24.0, title,
             {.size = 14, .anchor = "middle", .fill = "#111111",
              .bold = true, .rotate = 0});
  }

  std::uint64_t peak = 1;
  for (const std::uint64_t count : matrix.messages) {
    peak = std::max(peak, count);
  }

  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      const double intensity =
          static_cast<double>(matrix.messages_between(src, dst)) /
          static_cast<double>(peak);
      // White (0) to deep blue (1).
      const int channel = static_cast<int>(245.0 - intensity * 170.0);
      char color[8];
      std::snprintf(color, sizeof(color), "#%02x%02xf5", channel, channel);
      svg.rect(left + cell * dst, top + cell * src, cell - 1, cell - 1,
               {.fill = color, .stroke = "#dddddd", .stroke_width = 0.5,
                .opacity = 1.0, .dash = ""});
    }
    // Row / column labels, thinned for large matrices.
    if (n <= 32 || src % 4 == 0) {
      svg.text(left - 6, top + cell * src + cell * 0.7, std::to_string(src),
               {.size = 9, .anchor = "end", .fill = "#333333", .bold = false,
                .rotate = 0});
      svg.text(left + cell * src + cell * 0.5, top + cell * n + 12,
               std::to_string(src),
               {.size = 9, .anchor = "middle", .fill = "#333333",
                .bold = false, .rotate = 0});
    }
  }
  svg.text(left + cell * n / 2.0, height - 8, "receiver rank",
           {.size = 11, .anchor = "middle", .fill = "#222222", .bold = false,
            .rotate = 0});
  svg.text(14, top + cell * n / 2.0, "sender rank",
           {.size = 11, .anchor = "middle", .fill = "#222222", .bold = false,
            .rotate = -90});
  return svg;
}

std::string ascii_comm_matrix(const graph::CommMatrix& matrix) {
  ANACIN_CHECK(matrix.num_ranks > 0, "empty communication matrix");
  const int n = matrix.num_ranks;
  std::ostringstream os;
  os << pad_right("src\\dst", 8);
  for (int dst = 0; dst < n; ++dst) {
    os << pad_left(std::to_string(dst), 6);
  }
  os << '\n';
  for (int src = 0; src < n; ++src) {
    os << pad_right(std::to_string(src), 8);
    for (int dst = 0; dst < n; ++dst) {
      os << pad_left(std::to_string(matrix.messages_between(src, dst)), 6);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace anacin::viz

#pragma once

#include <string>

#include "graph/event_graph.hpp"
#include "viz/svg.hpp"

namespace anacin::viz {

/// Styling of the event-graph timeline (paper Figs 1-4): one row per MPI
/// rank; green circles for process start/end, blue for sends, red for
/// receives; gray arrows for point-to-point messages. Nodes are positioned
/// by Lamport clock so message arrows always point rightwards.
struct EventGraphRenderConfig {
  double node_radius = 7.0;
  double column_width = 34.0;
  double row_height = 56.0;
  std::string title;
  /// Label receive nodes with their matched source rank.
  bool annotate_matches = true;
  /// Skip events from collective internals (tags >= 2^20).
  bool hide_collective_traffic = false;
};

SvgDocument render_event_graph(const graph::EventGraph& graph,
                               const EventGraphRenderConfig& config = {});

}  // namespace anacin::viz

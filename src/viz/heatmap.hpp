#pragma once

#include <string>

#include "graph/metrics.hpp"
#include "viz/svg.hpp"

namespace anacin::viz {

/// SVG heatmap of a communication matrix: rows are senders, columns are
/// receivers, cell shade encodes the message count.
SvgDocument comm_matrix_heatmap(const graph::CommMatrix& matrix,
                                const std::string& title = {});

/// Terminal rendering of the communication matrix (counts, right-aligned).
std::string ascii_comm_matrix(const graph::CommMatrix& matrix);

}  // namespace anacin::viz

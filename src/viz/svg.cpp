#include "viz/svg.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/fs.hpp"
#include "support/json.hpp"

namespace anacin::viz {

namespace {

std::string number(double value) {
  std::ostringstream os;
  os.precision(6);
  os << value;
  return os.str();
}

std::string style_attrs(const Style& style) {
  std::ostringstream os;
  os << "fill=\"" << style.fill << "\" stroke=\"" << style.stroke
     << "\" stroke-width=\"" << number(style.stroke_width) << '"';
  if (style.opacity != 1.0) {
    os << " opacity=\"" << number(style.opacity) << '"';
  }
  if (!style.dash.empty()) {
    os << " stroke-dasharray=\"" << style.dash << '"';
  }
  return os.str();
}

}  // namespace

SvgDocument::SvgDocument(double width, double height)
    : width_(width), height_(height) {
  ANACIN_CHECK(width > 0 && height > 0, "SVG canvas must be positive");
}

void SvgDocument::line(double x1, double y1, double x2, double y2,
                       const Style& style) {
  std::ostringstream os;
  os << "<line x1=\"" << number(x1) << "\" y1=\"" << number(y1) << "\" x2=\""
     << number(x2) << "\" y2=\"" << number(y2) << "\" " << style_attrs(style)
     << "/>";
  elements_.push_back(os.str());
}

void SvgDocument::circle(double cx, double cy, double radius,
                         const Style& style) {
  std::ostringstream os;
  os << "<circle cx=\"" << number(cx) << "\" cy=\"" << number(cy)
     << "\" r=\"" << number(radius) << "\" " << style_attrs(style) << "/>";
  elements_.push_back(os.str());
}

void SvgDocument::rect(double x, double y, double w, double h,
                       const Style& style) {
  std::ostringstream os;
  os << "<rect x=\"" << number(x) << "\" y=\"" << number(y) << "\" width=\""
     << number(w) << "\" height=\"" << number(h) << "\" "
     << style_attrs(style) << "/>";
  elements_.push_back(os.str());
}

namespace {
std::string points_attr(const std::vector<Point>& points) {
  std::ostringstream os;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i != 0) os << ' ';
    os << number(points[i].x) << ',' << number(points[i].y);
  }
  return os.str();
}
}  // namespace

void SvgDocument::polygon(const std::vector<Point>& points,
                          const Style& style) {
  std::ostringstream os;
  os << "<polygon points=\"" << points_attr(points) << "\" "
     << style_attrs(style) << "/>";
  elements_.push_back(os.str());
}

void SvgDocument::polyline(const std::vector<Point>& points,
                           const Style& style) {
  std::ostringstream os;
  os << "<polyline points=\"" << points_attr(points) << "\" "
     << style_attrs(style) << "/>";
  elements_.push_back(os.str());
}

void SvgDocument::text(double x, double y, const std::string& content,
                       const TextStyle& style) {
  std::ostringstream os;
  os << "<text x=\"" << number(x) << "\" y=\"" << number(y)
     << "\" font-size=\"" << number(style.size) << "\" text-anchor=\""
     << style.anchor << "\" fill=\"" << style.fill
     << "\" font-family=\"sans-serif\"";
  if (style.bold) os << " font-weight=\"bold\"";
  if (style.rotate != 0.0) {
    os << " transform=\"rotate(" << number(style.rotate) << ' ' << number(x)
       << ' ' << number(y) << ")\"";
  }
  os << '>' << json::escape(content) << "</text>";
  elements_.push_back(os.str());
}

void SvgDocument::raw(const std::string& element) {
  elements_.push_back(element);
}

std::string SvgDocument::render() const {
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << number(width_)
     << "\" height=\"" << number(height_) << "\" viewBox=\"0 0 "
     << number(width_) << ' ' << number(height_) << "\">\n";
  os << "<rect x=\"0\" y=\"0\" width=\"" << number(width_) << "\" height=\""
     << number(height_) << "\" fill=\"#ffffff\"/>\n";
  for (const auto& element : elements_) os << element << '\n';
  os << "</svg>\n";
  return os.str();
}

void SvgDocument::save(const std::string& path) const {
  // Atomic temp-write + rename: a crash mid-save never leaves a truncated
  // SVG that a browser would render half-blank.
  support::atomic_write_file(path, render());
}

}  // namespace anacin::viz
